//! Job descriptions: what a client asks the daemon to tune, and the views
//! the daemon reports back.

use serde::{Deserialize, Serialize};

use harl_gbt::ScoreStats;
use harl_par::ParallelismOpts;
use harl_tensor_ir::{workload, Subgraph};
use harl_tensor_sim::Hardware;

/// The workload a job tunes, as a closed set of named operator shapes the
/// daemon can rebuild deterministically on restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Dense matmul `C[m,n] = A[m,k] * B[k,n]`.
    Gemm {
        /// Rows of A/C.
        m: u32,
        /// Reduction extent.
        k: u32,
        /// Columns of B/C.
        n: u32,
    },
    /// Batched matmul.
    BatchGemm {
        /// Batch count.
        b: u32,
        /// Rows of A/C.
        m: u32,
        /// Reduction extent.
        k: u32,
        /// Columns of B/C.
        n: u32,
    },
    /// 2D convolution, NCHW layout.
    // field names deliberately avoid the derive shim's `w`/`v` binders
    Conv2d {
        /// Batch count.
        batch: u32,
        /// Input height.
        height: u32,
        /// Input width.
        width: u32,
        /// Input channels.
        ci: u32,
        /// Output channels.
        co: u32,
        /// Kernel size (square).
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        pad: u32,
    },
    /// Row-wise softmax.
    Softmax {
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
}

impl WorkloadSpec {
    /// Builds the tensor-IR subgraph this spec describes.
    pub fn build(&self) -> Subgraph {
        match *self {
            WorkloadSpec::Gemm { m, k, n } => workload::gemm(m, k, n),
            WorkloadSpec::BatchGemm { b, m, k, n } => workload::batch_gemm(b, m, k, n),
            WorkloadSpec::Conv2d {
                batch,
                height,
                width,
                ci,
                co,
                kernel,
                stride,
                pad,
            } => workload::conv2d(batch, height, width, ci, co, kernel, stride, pad),
            WorkloadSpec::Softmax { rows, cols } => workload::softmax(rows, cols),
        }
    }

    /// The compact CLI form, e.g. `gemm:1024x1024x1024`.
    pub fn summary(&self) -> String {
        match *self {
            WorkloadSpec::Gemm { m, k, n } => format!("gemm:{m}x{k}x{n}"),
            WorkloadSpec::BatchGemm { b, m, k, n } => format!("bgemm:{b}x{m}x{k}x{n}"),
            WorkloadSpec::Conv2d {
                batch,
                height,
                width,
                ci,
                co,
                kernel,
                stride,
                pad,
            } => format!("conv2d:{batch}x{height}x{width}x{ci}x{co}x{kernel}x{stride}x{pad}"),
            WorkloadSpec::Softmax { rows, cols } => format!("softmax:{rows}x{cols}"),
        }
    }

    /// Parses the compact CLI form produced by [`WorkloadSpec::summary`]:
    /// `<op>:<dims>` with `x`-separated dimensions.
    pub fn parse(s: &str) -> Result<WorkloadSpec, String> {
        let (op, dims) = s
            .split_once(':')
            .ok_or_else(|| format!("workload `{s}` must look like `gemm:1024x1024x1024`"))?;
        let nums: Vec<u32> = dims
            .split('x')
            .map(|d| {
                d.parse::<u32>()
                    .map_err(|e| format!("workload `{s}`: bad dimension `{d}`: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let want = |n: usize| {
            if nums.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "workload `{s}`: `{op}` takes {n} dimensions, got {}",
                    nums.len()
                ))
            }
        };
        let spec = match op {
            "gemm" => {
                want(3)?;
                WorkloadSpec::Gemm {
                    m: nums[0],
                    k: nums[1],
                    n: nums[2],
                }
            }
            "bgemm" => {
                want(4)?;
                WorkloadSpec::BatchGemm {
                    b: nums[0],
                    m: nums[1],
                    k: nums[2],
                    n: nums[3],
                }
            }
            "conv2d" => {
                want(8)?;
                WorkloadSpec::Conv2d {
                    batch: nums[0],
                    height: nums[1],
                    width: nums[2],
                    ci: nums[3],
                    co: nums[4],
                    kernel: nums[5],
                    stride: nums[6],
                    pad: nums[7],
                }
            }
            "softmax" => {
                want(2)?;
                WorkloadSpec::Softmax {
                    rows: nums[0],
                    cols: nums[1],
                }
            }
            other => {
                return Err(format!(
                    "unknown workload `{other}` (expected gemm, bgemm, conv2d, or softmax)"
                ))
            }
        };
        if nums.contains(&0) {
            return Err(format!("workload `{s}`: dimensions must be > 0"));
        }
        Ok(spec)
    }
}

/// Which search algorithm a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunerKind {
    /// The paper's hierarchical RL tuner.
    Harl,
    /// The Ansor evolutionary baseline.
    Ansor,
    /// The Flextensor-like fixed-length RL baseline.
    Flextensor,
    /// UCT Monte-Carlo tree search over schedule modifications.
    Mcts,
}

impl TunerKind {
    /// The tuner's wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            TunerKind::Harl => "harl",
            TunerKind::Ansor => "ansor",
            TunerKind::Flextensor => "flextensor",
            TunerKind::Mcts => "mcts",
        }
    }

    /// Parses a CLI tuner name.
    pub fn parse(s: &str) -> Result<TunerKind, String> {
        match s {
            "harl" => Ok(TunerKind::Harl),
            "ansor" => Ok(TunerKind::Ansor),
            "flextensor" => Ok(TunerKind::Flextensor),
            "mcts" => Ok(TunerKind::Mcts),
            other => Err(format!(
                "unknown tuner `{other}` (expected harl, ansor, flextensor, or mcts)"
            )),
        }
    }
}

/// Search-scale preset. Maps onto the HARL Table-5 presets; the baseline
/// tuners use their defaults regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    /// Smallest tracks; unit-test scale.
    Tiny,
    /// CI/demo scale.
    Fast,
    /// The full Table-5 configuration.
    Paper,
}

impl Preset {
    /// The preset's wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Tiny => "tiny",
            Preset::Fast => "fast",
            Preset::Paper => "paper",
        }
    }

    /// Parses a CLI preset name.
    pub fn parse(s: &str) -> Result<Preset, String> {
        match s {
            "tiny" => Ok(Preset::Tiny),
            "fast" => Ok(Preset::Fast),
            "paper" => Ok(Preset::Paper),
            other => Err(format!(
                "unknown preset `{other}` (expected tiny, fast, or paper)"
            )),
        }
    }

    /// The HARL configuration this preset selects.
    pub fn harl_config(&self) -> harl_core::HarlConfig {
        match self {
            Preset::Tiny => harl_core::HarlConfig::tiny(),
            Preset::Fast => harl_core::HarlConfig::fast(),
            Preset::Paper => harl_core::HarlConfig::paper(),
        }
    }
}

/// A complete tuning-job request: everything the daemon needs to rebuild
/// and re-run the job deterministically, including after a restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// What to tune.
    pub workload: WorkloadSpec,
    /// Which search algorithm to run.
    pub tuner: TunerKind,
    /// Search-scale preset.
    pub preset: Preset,
    /// Hardware model name (see `Hardware::from_name`).
    pub hardware: String,
    /// Total measurement-trial budget.
    pub trials: u64,
    /// Scheduling priority; higher runs first.
    pub priority: i32,
    /// Optional target latency (ms) to report `trials_to_target` against.
    pub target_ms: Option<f64>,
    /// Thread-pool widths for the job's parallel stages (scoring, PPO).
    /// Performance only — results are bit-identical at any width — so it
    /// is excluded from [`JobSpec::job_key`]. `None` uses the daemon's
    /// environment (`HARL_SCORE_THREADS` / `HARL_PPO_THREADS`).
    #[serde(default)]
    pub parallelism: Option<ParallelismOpts>,
    /// Run a coordinate-descent fine-tuning phase after the search
    /// completes its budget. Unlike `parallelism`, this changes the search
    /// result, so it is part of [`JobSpec::job_key`]. Defaults to off for
    /// wire compatibility with older clients.
    #[serde(default)]
    pub finetune: bool,
}

impl JobSpec {
    /// Rejects specs the daemon could not run.
    pub fn validate(&self) -> Result<(), String> {
        if self.trials == 0 {
            return Err("trials must be > 0".into());
        }
        if Hardware::from_name(&self.hardware).is_none() {
            return Err(format!(
                "unknown hardware `{}` (expected cpu, xeon-6226r, avx2-desktop, gpu, rtx-3090, or a100)",
                self.hardware
            ));
        }
        if let Some(ms) = self.target_ms {
            if !ms.is_finite() || ms <= 0.0 {
                return Err(format!("target_ms must be a finite latency > 0, got {ms}"));
            }
        }
        if let Some(par) = &self.parallelism {
            par.validate()?;
        }
        Ok(())
    }

    /// Stable identity of the *search* this spec describes, used to stamp
    /// and guard session checkpoints. Priority, reporting targets, and
    /// thread widths do not change the search (parallelism is
    /// bit-identical at any width), so they are excluded: re-submitting
    /// the same workload at a different priority or width still resumes
    /// its checkpoint.
    pub fn job_key(&self) -> String {
        let canon = format!(
            "{}|{}|{}|{}|{}|ft={}",
            self.workload.summary(),
            self.tuner.name(),
            self.preset.name(),
            self.hardware,
            self.trials,
            self.finetune
        );
        // FNV-1a, the store's idiom for stable content hashes
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canon.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{}#{h:016x}", self.workload.summary())
    }
}

/// Lifecycle state of a job inside the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and waiting for a worker (including requeued after a
    /// daemon restart or graceful shutdown).
    Queued,
    /// A worker is tuning it right now.
    Running,
    /// Finished its full trial budget; a result is available.
    Done,
    /// Stopped by a `cancel` request.
    Cancelled,
    /// Aborted with an error (see the status reply's message).
    Failed,
}

impl JobState {
    /// The state's wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// True for states a job can never leave.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Point-in-time view of one job, as reported by `status` and `list`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Job id (`j000001`, ...).
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Compact workload form (`gemm:1024x1024x1024`).
    pub workload: String,
    /// Tuner name.
    pub tuner: String,
    /// Scheduling priority.
    pub priority: i32,
    /// Total trial budget.
    pub trials_total: u64,
    /// Trials consumed so far (live while running).
    pub trials_used: u64,
    /// Tuning rounds completed so far.
    pub rounds_done: u64,
    /// Best latency found so far, ms (`null`/NaN before any measurement).
    pub best_latency_ms: f64,
    /// True when the job resumed from a checkpoint after a restart.
    pub resumed: bool,
    /// Records replayed from the shared pool before the first fresh
    /// trial (0 while queued; with federation on, this counts the whole
    /// fleet's matching history, not just this daemon's).
    #[serde(default)]
    pub warm_records: u64,
    /// Batched-scoring pipeline counters (`None` while the job is queued,
    /// or for tuners without a cost model, e.g. flextensor).
    #[serde(default)]
    pub score_stats: Option<ScoreStats>,
    /// Failure message, when [`JobView::state`] is [`JobState::Failed`].
    pub error: Option<String>,
}

/// Final metrics of a completed job — the `result` payload, mirroring the
/// quickstart example's machine-readable metrics line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub id: String,
    /// Compact workload form.
    pub workload: String,
    /// Tuner name.
    pub tuner: String,
    /// Best execution time found, ms.
    pub best_ms: f64,
    /// Total measurement trials consumed.
    pub trials: u64,
    /// Trial index that first reached the best time (-1 if untracked).
    pub trials_to_best: i64,
    /// Trial index that first reached the requested `target_ms`
    /// (-1 = never reached; absent when no target was requested).
    pub trials_to_target: Option<i64>,
    /// Records replayed into the tuner from the shared pool/store before
    /// the first fresh trial.
    pub warm_records: u64,
    /// True when the job resumed from a checkpoint.
    pub resumed: bool,
    /// Simulated search time spent, seconds.
    pub sim_seconds: f64,
    /// Batched-scoring pipeline counters (`None` for tuners without a
    /// cost model, e.g. flextensor).
    #[serde(default)]
    pub score_stats: Option<ScoreStats>,
    /// Trials spent by the coordinate-descent fine-tuning phase (absent
    /// when the spec did not request fine-tuning).
    #[serde(default)]
    pub finetune_trials: Option<u64>,
}

impl JobOutcome {
    /// The quickstart-compatible machine-readable metrics line.
    pub fn metrics_line(&self) -> String {
        let mut line = format!(
            "metrics: best_ms={:.9} trials={} trials_to_best={}",
            self.best_ms, self.trials, self.trials_to_best
        );
        if let Some(tt) = self.trials_to_target {
            line.push_str(&format!(" trials_to_target={tt}"));
        }
        line.push_str(&format!(
            " warm_records={} resumed={}",
            self.warm_records, self.resumed
        ));
        if let Some(s) = &self.score_stats {
            line.push_str(&format!(
                " score_batches={} cache_hits={} cache_misses={}",
                s.batch_count, s.cache_hits, s.cache_misses
            ));
        }
        if let Some(ft) = self.finetune_trials {
            line.push_str(&format!(" finetune_trials={ft}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(trials: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadSpec::Gemm {
                m: 128,
                k: 128,
                n: 128,
            },
            tuner: TunerKind::Harl,
            preset: Preset::Tiny,
            hardware: "cpu".into(),
            trials,
            priority: 0,
            target_ms: None,
            parallelism: None,
            finetune: false,
        }
    }

    #[test]
    fn workload_parse_round_trips_summary() {
        for s in [
            "gemm:1024x1024x1024",
            "bgemm:8x128x64x128",
            "conv2d:1x56x56x64x64x3x1x1",
            "softmax:1024x1024",
        ] {
            let w = WorkloadSpec::parse(s).unwrap();
            assert_eq!(w.summary(), s);
            // the spec is buildable and names a real subgraph
            assert!(!w.build().name.is_empty());
        }
    }

    #[test]
    fn workload_parse_rejects_malformed_strings() {
        for bad in [
            "gemm",             // no dims
            "gemm:1024x1024",   // wrong arity
            "gemm:1024xax1024", // non-numeric
            "gemm:0x8x8",       // zero dim
            "lstm:8x8",         // unknown op
        ] {
            assert!(WorkloadSpec::parse(bad).is_err(), "`{bad}` must fail");
        }
    }

    #[test]
    fn job_key_ignores_priority_and_target_but_not_search_params() {
        let a = spec(100);
        let mut b = a.clone();
        b.priority = 9;
        b.target_ms = Some(1.5);
        b.parallelism = Some(ParallelismOpts::uniform(4));
        assert_eq!(
            a.job_key(),
            b.job_key(),
            "priority/target/parallelism are not search"
        );

        let mut c = a.clone();
        c.trials = 200;
        assert_ne!(a.job_key(), c.job_key());
        let mut d = a.clone();
        d.tuner = TunerKind::Ansor;
        assert_ne!(a.job_key(), d.job_key());
        let mut e = a.clone();
        e.tuner = TunerKind::Mcts;
        assert_ne!(a.job_key(), e.job_key());
        // fine-tuning changes the search result, so it changes the key:
        // a finetuned resubmission must not resume a non-finetuned
        // checkpoint (or vice versa)
        let mut f = a.clone();
        f.finetune = true;
        assert_ne!(a.job_key(), f.job_key());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(spec(100).validate().is_ok());
        assert!(spec(0).validate().is_err());
        let mut s = spec(100);
        s.hardware = "tpu-v9".into();
        assert!(s.validate().is_err());
        let mut s = spec(100);
        s.target_ms = Some(-1.0);
        assert!(s.validate().is_err());
        let mut s = spec(100);
        s.parallelism = Some(ParallelismOpts {
            score_threads: 0,
            ppo_threads: 1,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn metrics_line_matches_quickstart_format() {
        let out = JobOutcome {
            id: "j000001".into(),
            workload: "gemm:128x128x128".into(),
            tuner: "harl".into(),
            best_ms: 1.25,
            trials: 64,
            trials_to_best: 40,
            trials_to_target: Some(12),
            warm_records: 7,
            resumed: false,
            sim_seconds: 33.0,
            score_stats: None,
            finetune_trials: None,
        };
        assert_eq!(
            out.metrics_line(),
            "metrics: best_ms=1.250000000 trials=64 trials_to_best=40 \
             trials_to_target=12 warm_records=7 resumed=false"
        );
    }

    #[test]
    fn metrics_line_appends_scoring_counters_when_present() {
        let out = JobOutcome {
            id: "j000002".into(),
            workload: "gemm:128x128x128".into(),
            tuner: "harl".into(),
            best_ms: 1.25,
            trials: 64,
            trials_to_best: 40,
            trials_to_target: None,
            warm_records: 0,
            resumed: false,
            sim_seconds: 33.0,
            score_stats: Some(ScoreStats {
                batch_count: 12,
                scored: 640,
                cache_hits: 100,
                cache_misses: 540,
                features_cached: 540,
                threads: 1,
            }),
            finetune_trials: Some(9),
        };
        assert_eq!(
            out.metrics_line(),
            "metrics: best_ms=1.250000000 trials=64 trials_to_best=40 \
             warm_records=0 resumed=false score_batches=12 cache_hits=100 \
             cache_misses=540 finetune_trials=9"
        );
    }
}
