//! Client for a running harl-serve daemon.
//!
//! ```text
//! harl-cli [--addr HOST:PORT] submit WORKLOAD [--tuner T] [--preset P]
//!          [--hardware H] [--trials N] [--priority P] [--target-ms MS]
//!          [--score-threads N] [--ppo-threads N] [--watch]
//! harl-cli [--addr HOST:PORT] status|result|cancel|watch JOB_ID
//! harl-cli [--addr HOST:PORT] list
//! harl-cli [--addr HOST:PORT] metrics
//! harl-cli [--addr HOST:PORT] bench-load [--clients N] [--requests N]
//!          [--submit-every N] [--list-every N] [--smoke] [--out FILE]
//! harl-cli [--addr HOST:PORT] shutdown
//! ```
//!
//! The daemon address comes from `--addr` or `HARL_SERVE_ADDR` (e.g. read
//! from the daemon root's `serve.addr` file). `result` and `watch` print
//! the quickstart-compatible `metrics:` line for scripts.

use std::time::Duration;

use harl_serve::{
    bench_load, BenchLoadConfig, Client, JobSpec, JobState, JobView, ParallelismOpts, Preset,
    TunerKind, WorkloadSpec,
};

fn usage() -> ! {
    eprintln!(
        "usage: harl-cli [--addr HOST:PORT] <command>\n\
         commands:\n\
         \x20 submit WORKLOAD [--searcher harl|ansor|flextensor|mcts] [--finetune]\n\
         \x20        [--preset tiny|fast|paper] [--hardware NAME] [--trials N]\n\
         \x20        [--priority P] [--target-ms MS]\n\
         \x20        [--score-threads N] [--ppo-threads N] [--watch]\n\
         \x20 status JOB_ID      one job's live state\n\
         \x20 result JOB_ID      a finished job's metrics\n\
         \x20 watch JOB_ID       follow a job to completion\n\
         \x20 cancel JOB_ID      stop a queued or running job\n\
         \x20 list               all jobs\n\
         \x20 metrics            Prometheus text dump of the daemon's metrics\n\
         \x20 bench-load [--clients N] [--requests N] [--submit-every N]\n\
         \x20        [--list-every N] [--smoke] [--out FILE]\n\
         \x20                    drive the daemon with concurrent load, report p50/p99\n\
         \x20 shutdown           checkpoint in-flight jobs and stop the daemon\n\
         WORKLOAD is e.g. gemm:1024x1024x1024, bgemm:8x128x64x128,\n\
         conv2d:1x56x56x64x64x3x1x1, or softmax:1024x1024"
    );
    std::process::exit(2);
}

fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = std::env::var("HARL_SERVE_ADDR").ok();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            die("--addr needs a value");
        }
        addr = Some(args[1].clone());
        args.drain(0..2);
    }
    let Some(addr) = addr else {
        die("no daemon address: pass --addr or set HARL_SERVE_ADDR");
    };
    let client = Client::new(addr.clone());

    let Some(command) = args.first().cloned() else {
        usage();
    };
    let rest = &args[1..];
    match command.as_str() {
        "submit" => submit(&client, rest),
        "status" => {
            let view = client.status(one_id(rest)).unwrap_or_else(|e| die(e));
            print_view(&view);
        }
        "result" => {
            let outcome = client.result(one_id(rest)).unwrap_or_else(|e| die(e));
            println!("{}", outcome.metrics_line());
        }
        "watch" => watch(&client, one_id(rest)),
        "cancel" => {
            let id = one_id(rest);
            client.cancel(id).unwrap_or_else(|e| die(e));
            println!("cancel requested for {id}");
        }
        "list" => {
            for view in client.list().unwrap_or_else(|e| die(e)) {
                print_view(&view);
            }
        }
        "metrics" => {
            print!("{}", client.metrics().unwrap_or_else(|e| die(e)));
        }
        "bench-load" => bench(&addr, rest),
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| die(e));
            println!("shutdown requested");
        }
        _ => usage(),
    }
}

fn one_id(rest: &[String]) -> &str {
    match rest {
        [id] => id,
        _ => usage(),
    }
}

fn submit(client: &Client, rest: &[String]) {
    let Some((workload_str, flags)) = rest.split_first() else {
        usage();
    };
    let workload = WorkloadSpec::parse(workload_str).unwrap_or_else(|e| die(e));
    let mut spec = JobSpec {
        workload,
        tuner: TunerKind::Harl,
        preset: Preset::Fast,
        hardware: "cpu".to_string(),
        trials: 160,
        priority: 0,
        target_ms: None,
        parallelism: None,
        finetune: false,
    };
    let mut watch_it = false;
    let mut flags = flags.iter();
    while let Some(flag) = flags.next() {
        let mut value = |name: &str| {
            flags
                .next()
                .unwrap_or_else(|| die(format!("{name} needs a value")))
        };
        match flag.as_str() {
            // --tuner is the historical spelling; --searcher matches the
            // tournament vocabulary
            "--tuner" | "--searcher" => {
                spec.tuner = TunerKind::parse(value(flag)).unwrap_or_else(|e| die(e))
            }
            "--finetune" => spec.finetune = true,
            "--preset" => spec.preset = Preset::parse(value("--preset")).unwrap_or_else(|e| die(e)),
            "--hardware" => spec.hardware = value("--hardware").clone(),
            "--trials" => {
                spec.trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--trials: {e}")))
            }
            "--priority" => {
                spec.priority = value("--priority")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--priority: {e}")))
            }
            "--target-ms" => {
                spec.target_ms = Some(
                    value("--target-ms")
                        .parse()
                        .unwrap_or_else(|e| die(format!("--target-ms: {e}"))),
                )
            }
            "--score-threads" => {
                let n = value("--score-threads")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--score-threads: {e}")));
                spec.parallelism
                    .get_or_insert_with(ParallelismOpts::from_env)
                    .score_threads = n;
            }
            "--ppo-threads" => {
                let n = value("--ppo-threads")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--ppo-threads: {e}")));
                spec.parallelism
                    .get_or_insert_with(ParallelismOpts::from_env)
                    .ppo_threads = n;
            }
            "--watch" => watch_it = true,
            other => die(format!("unknown submit flag `{other}`")),
        }
    }
    spec.validate().unwrap_or_else(|e| die(e));
    let id = client.submit(&spec).unwrap_or_else(|e| die(e));
    println!("submitted {id}");
    if watch_it {
        watch(client, &id);
    }
}

fn bench(addr: &str, rest: &[String]) {
    let mut cfg = BenchLoadConfig::default();
    let mut out: Option<String> = None;
    let mut flags = rest.iter();
    while let Some(flag) = flags.next() {
        let mut value = |name: &str| {
            flags
                .next()
                .unwrap_or_else(|| die(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--clients" => {
                cfg.clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--clients: {e}")))
            }
            "--requests" => {
                cfg.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--requests: {e}")))
            }
            "--submit-every" => {
                cfg.submit_every = value("--submit-every")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--submit-every: {e}")))
            }
            "--list-every" => {
                cfg.list_every = value("--list-every")
                    .parse()
                    .unwrap_or_else(|e| die(format!("--list-every: {e}")))
            }
            "--smoke" => cfg.smoke = true,
            "--out" => out = Some(value("--out").clone()),
            other => die(format!("unknown bench-load flag `{other}`")),
        }
    }
    let report = bench_load::run(addr, &cfg).unwrap_or_else(|e| die(e));
    let json = report.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| die(e));
            eprintln!("bench-load report written to {path}");
        }
        None => println!("{json}"),
    }
}

fn watch(client: &Client, id: &str) {
    let mut last = (JobState::Queued, u64::MAX);
    let outcome = client
        .wait(id, Duration::from_millis(100), |view| {
            let now = (view.state, view.trials_used);
            if now != last {
                print_view(view);
                last = now;
            }
        })
        .unwrap_or_else(|e| die(e));
    println!("{}", outcome.metrics_line());
}

fn print_view(view: &JobView) {
    let best = if view.best_latency_ms.is_finite() {
        format!("{:.3} ms", view.best_latency_ms)
    } else {
        "-".to_string()
    };
    let mut line = format!(
        "{} {:9} {} tuner={} prio={} trials={}/{} rounds={} best={best}",
        view.id,
        view.state.name(),
        view.workload,
        view.tuner,
        view.priority,
        view.trials_used,
        view.trials_total,
        view.rounds_done,
    );
    if view.warm_records > 0 {
        line.push_str(&format!(" warm={}", view.warm_records));
    }
    if view.resumed {
        line.push_str(" resumed");
    }
    if let Some(s) = &view.score_stats {
        line.push_str(&format!(
            " score_batches={} cache_hit_rate={:.2}",
            s.batch_count,
            s.hit_rate()
        ));
    }
    if let Some(err) = &view.error {
        line.push_str(&format!(" error={err}"));
    }
    println!("{line}");
}
