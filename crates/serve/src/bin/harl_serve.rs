//! The tuning daemon.
//!
//! ```text
//! harl-serve --root DIR [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!            [--peer HOST:PORT]... [--sync-ms N]
//! ```
//!
//! Recovers and requeues any unfinished jobs found under the root, then
//! binds (`127.0.0.1:0` by default — the resolved address lands in
//! `<root>/serve.addr`) and serves until a `shutdown` request arrives.
//! Each `--peer` names another daemon whose record pool this one pulls
//! and merges into its own every `--sync-ms` milliseconds (federation).

use harl_serve::{Daemon, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: harl-serve --root DIR [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20                [--peer HOST:PORT]... [--sync-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<String> = None;
    let mut cfg_addr: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut sync_ms: Option<u64> = None;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--root" => root = Some(value("--root")),
            "--addr" => cfg_addr = Some(value("--addr")),
            "--workers" => workers = Some(parse_num(&value("--workers"), "--workers")),
            "--queue-cap" => queue_cap = Some(parse_num(&value("--queue-cap"), "--queue-cap")),
            "--peer" => peers.push(value("--peer")),
            "--sync-ms" => sync_ms = Some(parse_num(&value("--sync-ms"), "--sync-ms") as u64),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(root) = root else {
        eprintln!("error: --root is required");
        usage();
    };

    let mut cfg = ServeConfig::new(root);
    if let Some(addr) = cfg_addr {
        cfg.addr = addr;
    }
    if let Some(w) = workers {
        cfg.workers = w;
    }
    if let Some(c) = queue_cap {
        cfg.queue_capacity = c;
    }
    cfg.peers = peers;
    if let Some(ms) = sync_ms {
        cfg.sync_interval = std::time::Duration::from_millis(ms);
    }

    let root_display = cfg.root.display().to_string();
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: starting daemon: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "harl-serve listening on {} (root {root_display})",
        daemon.addr()
    );
    daemon.wait();
    println!("harl-serve: shutdown complete");
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|e| {
        eprintln!("error: {flag}={s}: {e}");
        std::process::exit(2);
    })
}
