//! Pull-based pool federation: N daemons share one logical record pool.
//!
//! Each daemon exposes its shared pool as an append-only segment via the
//! `pool_sync` verb; a puller thread on every peer-configured daemon
//! pages through each peer's segment and merges the records into its own
//! pool. The merge is `append_unique` — dedup by record fingerprint — so
//! every pull is idempotent: re-pulling after a lost cursor, a crash
//! mid-sync, or syncing the same segment in both directions appends
//! nothing new. That single property carries all the failure handling;
//! cursors are a pure optimization and may be lost or reset freely.
//!
//! Per-peer cursors persist best-effort in `<root>/sync_cursors.txt`
//! (plain `offset addr` lines, rewritten via tmp+rename) so a restarted
//! daemon resumes pulling where it left off instead of re-paging
//! everything through the dedup filter.

use std::collections::HashMap;
use std::fs;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::client::{Client, ClientConfig};
use crate::error::ServeError;
use crate::server::Shared;

/// Records per `pool_sync` reply page, keeping one reply one bounded
/// wire line (well under the event loop's line cap).
pub(crate) const SYNC_PAGE: usize = 256;

fn cursors_path(root: &Path) -> std::path::PathBuf {
    root.join("sync_cursors.txt")
}

fn load_cursors(root: &Path) -> HashMap<String, u64> {
    let mut cursors = HashMap::new();
    if let Ok(text) = fs::read_to_string(cursors_path(root)) {
        for line in text.lines() {
            if let Some((off, addr)) = line.split_once(' ') {
                if let Ok(off) = off.parse::<u64>() {
                    cursors.insert(addr.to_string(), off);
                }
            }
        }
    }
    cursors
}

fn save_cursors(root: &Path, cursors: &HashMap<String, u64>) {
    let mut lines: Vec<String> = cursors
        .iter()
        .map(|(addr, off)| format!("{off} {addr}"))
        .collect();
    lines.sort();
    let tmp = root.join("sync_cursors.txt.tmp");
    let body = lines.join("\n") + "\n";
    if fs::write(&tmp, body).is_ok() {
        let _ = fs::rename(&tmp, cursors_path(root));
    }
}

/// The puller thread: one sync round over every peer, then sleep, until
/// shutdown. Spawned only when [`crate::ServeConfig::peers`] is set.
pub(crate) fn sync_loop(shared: &Arc<Shared>) {
    let reg = harl_obs::global();
    let rounds = reg.counter("harl_serve_pool_sync_rounds_total");
    let pulled = reg.counter("harl_serve_pool_sync_records_total{event=\"pulled\"}");
    let merged = reg.counter("harl_serve_pool_sync_records_total{event=\"merged\"}");
    let errors = reg.counter("harl_serve_pool_sync_errors_total");

    let clients: Vec<(String, Client)> = shared
        .cfg
        .peers
        .iter()
        .map(|p| {
            (
                p.clone(),
                Client::with_config(p, ClientConfig::federation()),
            )
        })
        .collect();
    let mut cursors = load_cursors(&shared.cfg.root);

    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut moved = false;
        for (peer, client) in &clients {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let cursor = cursors.entry(peer.clone()).or_insert(0);
            let before = *cursor;
            if let Err(_e) = sync_peer(shared, client, cursor, &pulled, &merged) {
                // a down peer is routine in a fleet: count it and let the
                // next round retry from the same cursor
                errors.inc();
            }
            moved |= *cursor != before;
        }
        rounds.inc();
        if moved {
            save_cursors(&shared.cfg.root, &cursors);
        }
        // sleep in slices so shutdown stays prompt
        let mut slept = Duration::ZERO;
        while slept < shared.cfg.sync_interval && !shared.shutdown.load(Ordering::SeqCst) {
            let step = (shared.cfg.sync_interval - slept).min(Duration::from_millis(25));
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// Pages one peer's segment from `cursor` to its reported total, merging
/// every record through the fingerprint filter.
fn sync_peer(
    shared: &Arc<Shared>,
    client: &Client,
    cursor: &mut u64,
    pulled: &harl_obs::Counter,
    merged: &harl_obs::Counter,
) -> Result<(), ServeError> {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(pool) = shared.pool_handle() else {
            return Ok(());
        };
        let (total, records) = client.pool_sync(*cursor)?;
        if records.is_empty() {
            if *cursor > total {
                // the peer's segment shrank (crash-repair truncation):
                // restart from zero — dedup makes the re-pull a no-op
                *cursor = 0;
                continue;
            }
            return Ok(());
        }
        pulled.add(records.len() as u64);
        let page = records.len() as u64;
        for record in records {
            if pool.append_unique(record)? {
                merged.inc();
            }
        }
        *cursor += page;
        if *cursor >= total {
            return Ok(());
        }
    }
}
