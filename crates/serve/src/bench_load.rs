//! Load benchmark for a running daemon: M concurrent clients mixing
//! `submit` / `status` / `list` traffic against one address, reporting
//! per-verb p50/p99 latency and aggregate throughput.
//!
//! Latencies go into a *local* [`harl_obs::MetricsRegistry`] (the global
//! one belongs to the daemon under test), using the fine-grained bucket
//! ladder so sub-millisecond wire round-trips still resolve a p50. The
//! JSON report is rendered by hand with a stable key order, so committed
//! baselines diff cleanly (`BENCH_serve.json`, gated by
//! `ci/bench_gate.sh serve`).

use std::sync::Arc;
use std::time::Instant;

use crate::client::Client;
use crate::error::ServeError;
use crate::job::{JobSpec, Preset, TunerKind, WorkloadSpec};

/// Load-mix knobs.
#[derive(Debug, Clone)]
pub struct BenchLoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Every Nth request is a `submit` of a tiny job (0 disables; `busy`
    /// backpressure replies count as served requests).
    pub submit_every: usize,
    /// Every Nth request is a `list` (0 disables); the rest are
    /// watch-style `status` polls of a seed job.
    pub list_every: usize,
    /// Marks the report as a reduced smoke run (CI) rather than the
    /// committed full benchmark.
    pub smoke: bool,
}

impl Default for BenchLoadConfig {
    fn default() -> BenchLoadConfig {
        BenchLoadConfig {
            clients: 8,
            requests: 200,
            submit_every: 100,
            list_every: 10,
            smoke: false,
        }
    }
}

/// One verb's latency distribution.
#[derive(Debug, Clone)]
pub struct VerbStats {
    /// Wire verb name.
    pub verb: String,
    /// Requests measured.
    pub count: u64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// Tail latency, milliseconds.
    pub p99_ms: f64,
}

/// The benchmark's result.
#[derive(Debug, Clone)]
pub struct BenchLoadReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Requests answered across all clients.
    pub total_requests: u64,
    /// Requests that errored (excluded from latency stats).
    pub errors: u64,
    /// Wall-clock of the load phase, milliseconds.
    pub duration_ms: f64,
    /// Answered requests per second.
    pub throughput_rps: f64,
    /// Per-verb latency stats, stable order: submit, status, list.
    pub verbs: Vec<VerbStats>,
    /// True for reduced CI smoke runs.
    pub smoke: bool,
}

impl BenchLoadReport {
    /// Renders the report as pretty JSON with a stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!(
            "  \"requests_per_client\": {},\n",
            self.requests_per_client
        ));
        out.push_str(&format!("  \"total_requests\": {},\n", self.total_requests));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str(&format!("  \"duration_ms\": {:.3},\n", self.duration_ms));
        out.push_str(&format!(
            "  \"throughput_rps\": {:.1},\n",
            self.throughput_rps
        ));
        out.push_str("  \"verbs\": {\n");
        for (i, v) in self.verbs.iter().enumerate() {
            let comma = if i + 1 < self.verbs.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{comma}\n",
                v.verb, v.count, v.p50_ms, v.p99_ms
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!("  \"smoke\": {}\n", self.smoke));
        out.push('}');
        out
    }
}

fn tiny_spec() -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Gemm {
            m: 16,
            k: 16,
            n: 16,
        },
        tuner: TunerKind::Harl,
        preset: Preset::Tiny,
        hardware: "cpu".into(),
        trials: 4,
        priority: 0,
        target_ms: None,
        parallelism: None,
        finetune: false,
    }
}

/// Runs the load mix against `addr` and aggregates the report.
///
/// A seed job is submitted first so `status` polls hit a real registry
/// entry; the mixed-in `submit`s may be answered `busy` once the queue
/// bound is reached — backpressure is part of the measured behavior, not
/// an error.
pub fn run(addr: &str, cfg: &BenchLoadConfig) -> Result<BenchLoadReport, ServeError> {
    let reg = Arc::new(harl_obs::MetricsRegistry::new());
    let seed_id = Arc::new(Client::new(addr).submit(&tiny_spec())?);
    let errors = reg.counter("errors");

    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients.max(1))
        .map(|_| {
            let addr = addr.to_string();
            let cfg = cfg.clone();
            let reg = reg.clone();
            let seed_id = seed_id.clone();
            std::thread::spawn(move || {
                let client = Client::new(&addr);
                let errors = reg.counter("errors");
                for i in 1..=cfg.requests {
                    let verb = if cfg.submit_every > 0 && i % cfg.submit_every == 0 {
                        "submit"
                    } else if cfg.list_every > 0 && i % cfg.list_every == 0 {
                        "list"
                    } else {
                        "status"
                    };
                    let t = Instant::now();
                    let ok = match verb {
                        "submit" => client.request(&crate::Request::Submit(tiny_spec())).is_ok(),
                        "list" => client.list().is_ok(),
                        _ => client.status(&seed_id).is_ok(),
                    };
                    if ok {
                        reg.histogram(verb, harl_obs::FINE_SECONDS_BOUNDS)
                            .observe(t.elapsed().as_secs_f64());
                    } else {
                        errors.inc();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let duration = started.elapsed();

    let mut verbs = Vec::new();
    let mut total = 0u64;
    for verb in ["submit", "status", "list"] {
        let h = reg.histogram(verb, harl_obs::FINE_SECONDS_BOUNDS);
        if h.count() == 0 {
            continue;
        }
        total += h.count();
        verbs.push(VerbStats {
            verb: verb.to_string(),
            count: h.count(),
            p50_ms: h.quantile(0.50) * 1e3,
            p99_ms: h.quantile(0.99) * 1e3,
        });
    }
    let duration_ms = duration.as_secs_f64() * 1e3;
    Ok(BenchLoadReport {
        clients: cfg.clients.max(1),
        requests_per_client: cfg.requests,
        total_requests: total,
        errors: errors.get(),
        duration_ms,
        throughput_rps: total as f64 / duration.as_secs_f64().max(1e-9),
        verbs,
        smoke: cfg.smoke,
    })
}
