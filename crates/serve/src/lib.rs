//! # harl-serve
//!
//! A concurrent tuning service over the session layer: a TCP daemon that
//! accepts tuning jobs, runs them on a bounded worker pool, and persists
//! everything so jobs survive daemon death.
//!
//! * **Wire protocol** ([`protocol`]) — line-delimited JSON with verbs
//!   `submit` / `status` / `result` / `cancel` / `list` / `shutdown`; the
//!   full shapes are documented in DESIGN.md §8.
//! * **Priority queue with backpressure** ([`queue`]) — a full queue
//!   answers `busy` instead of buffering unboundedly.
//! * **Per-job persistence** (`jobs/<id>/store/`) — every job
//!   is a checkpointing [`harl_core::TuningSession`]; a killed daemon
//!   restarts, requeues unfinished jobs, and resumes them bit-for-bit.
//! * **Cross-job warm-starting** — completed jobs donate their records to
//!   a shared pool; new jobs on similar workloads (matched by the store's
//!   similarity key) pre-train their cost model from it.
//! * **Cooperative cancellation & graceful shutdown** — both take effect
//!   at the next round boundary; shutdown checkpoints in-flight jobs.
//!
//! Binaries: `harl-serve` (the daemon) and `harl-cli` (submit / watch /
//! cancel / list / shutdown).

mod error;
pub mod job;
pub mod protocol;
pub mod queue;
mod server;
mod worker;

pub mod client;

pub use client::Client;
pub use error::ServeError;
pub use harl_par::ParallelismOpts;
pub use job::{JobOutcome, JobSpec, JobState, JobView, Preset, TunerKind, WorkloadSpec};
pub use protocol::{ErrorCode, Request, Response};
pub use server::{Daemon, ServeConfig};
