//! # harl-serve
//!
//! A concurrent tuning service over the session layer: a TCP daemon that
//! accepts tuning jobs, runs them on a bounded worker pool, and persists
//! everything so jobs survive daemon death.
//!
//! * **Wire protocol** ([`protocol`]) — line-delimited JSON with verbs
//!   `submit` / `status` / `result` / `cancel` / `list` / `pool_sync` /
//!   `shutdown`; the full shapes are documented in DESIGN.md §8.
//! * **Event-loop frontend** — all connections are multiplexed onto one
//!   `harl-net` loop thread, so thousands of idle `watch` clients cost
//!   buffers, not threads; the daemon runs exactly `workers + 1` threads
//!   (plus one federation puller when peers are configured).
//! * **Priority queue with backpressure** ([`queue`]) — a full queue
//!   answers `busy` instead of buffering unboundedly.
//! * **Per-job persistence** (`jobs/<id>/store/`) — every job
//!   is a checkpointing [`harl_core::TuningSession`]; a killed daemon
//!   restarts, requeues unfinished jobs, and resumes them bit-for-bit.
//! * **Cross-job warm-starting** — completed jobs donate their records to
//!   a shared pool; new jobs on similar workloads (matched by the store's
//!   similarity key) pre-train their cost model from it.
//! * **Pool federation** ([`federation`](crate)) — daemons configured
//!   with peers pull each other's pools via `pool_sync` and merge by
//!   record fingerprint, so jobs warm-start from the whole fleet's
//!   history; see DESIGN.md §14.
//! * **Cooperative cancellation & graceful shutdown** — both take effect
//!   at the next round boundary; shutdown checkpoints in-flight jobs.
//!
//! Binaries: `harl-serve` (the daemon) and `harl-cli` (submit / watch /
//! cancel / list / metrics / bench-load / shutdown). `bench-load` drives
//! a daemon with [`bench_load`] and reports per-verb p50/p99 latency.

pub mod bench_load;
mod error;
mod federation;
pub mod job;
pub mod protocol;
pub mod queue;
mod server;
mod worker;

pub mod client;

pub use bench_load::{BenchLoadConfig, BenchLoadReport};
pub use client::{Client, ClientConfig};
pub use error::ServeError;
pub use harl_par::ParallelismOpts;
pub use job::{JobOutcome, JobSpec, JobState, JobView, Preset, TunerKind, WorkloadSpec};
pub use protocol::{ErrorCode, Request, Response};
pub use server::{Daemon, ServeConfig};
