//! The daemon's bounded priority job queue.
//!
//! Higher [`priority`](crate::job::JobSpec::priority) pops first; equal
//! priorities pop in submission order. The bound is the backpressure
//! mechanism: a full queue rejects the push and the daemon answers
//! `busy`, so clients — not an unbounded buffer — absorb overload.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use harl_check::{CCondvar, CMutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` jobs already.
    Full {
        /// The configured bound.
        capacity: usize,
    },
    /// The queue was closed for shutdown.
    Closed,
}

#[derive(Debug, Eq, PartialEq)]
struct QueuedJob {
    priority: i32,
    seq: u64,
    id: String,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap: highest priority first, then lowest seq (FIFO)
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct QueueInner {
    heap: BinaryHeap<QueuedJob>,
    seq: u64,
    closed: bool,
}

/// Bounded, closable priority queue of job ids.
#[derive(Debug)]
pub struct JobQueue {
    inner: CMutex<QueueInner>,
    ready: CCondvar,
    capacity: usize,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: CMutex::new("serve.queue", QueueInner::default()),
            ready: CCondvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").heap.len()
    }

    /// True when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job id, failing instead of blocking when full or closed.
    pub fn push(&self, id: String, priority: i32) -> Result<(), PushError> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.closed {
            return Err(PushError::Closed);
        }
        if q.heap.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(QueuedJob { priority, seq, id });
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues bypassing the capacity bound (and the closed flag). Only
    /// for restart recovery: jobs accepted by a previous daemon must never
    /// be dropped, even when there are more of them than the bound.
    pub fn push_unbounded(&self, id: String, priority: i32) {
        let mut q = self.inner.lock().expect("queue poisoned");
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(QueuedJob { priority, seq, id });
        drop(q);
        self.ready.notify_one();
    }

    /// Blocks until a job is available (returning the highest-priority one)
    /// or the queue is closed (returning `None`, immediately once drained).
    pub fn pop(&self) -> Option<String> {
        let mut q = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = q.heap.pop() {
                return Some(job.id);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending jobs still pop, further pushes fail, and
    /// every blocked or future [`JobQueue::pop`] returns `None` once the
    /// queue drains.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.push("low".into(), 0).unwrap();
        q.push("high".into(), 5).unwrap();
        q.push("mid-a".into(), 2).unwrap();
        q.push("mid-b".into(), 2).unwrap();
        q.close(); // so the final pop returns None instead of blocking
        assert_eq!(q.pop().as_deref(), Some("high"));
        assert_eq!(q.pop().as_deref(), Some("mid-a"));
        assert_eq!(q.pop().as_deref(), Some("mid-b"));
        assert_eq!(q.pop().as_deref(), Some("low"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects_push() {
        let q = JobQueue::new(2);
        q.push("a".into(), 0).unwrap();
        q.push("b".into(), 0).unwrap();
        assert_eq!(q.push("c".into(), 9), Err(PushError::Full { capacity: 2 }));
        assert_eq!(q.pop().as_deref(), Some("a"));
        q.push("c".into(), 9).unwrap();
    }

    #[test]
    fn close_wakes_blocked_pop_and_rejects_push() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // give the waiter a moment to block
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert_eq!(q.push("late".into(), 0), Err(PushError::Closed));
    }

    #[test]
    fn pending_jobs_survive_close() {
        let q = JobQueue::new(4);
        q.push("a".into(), 0).unwrap();
        q.close();
        assert_eq!(q.pop().as_deref(), Some("a"));
        assert_eq!(q.pop(), None);
    }
}
