//! Task (subgraph) scheduling: Ansor's gradient-based greedy allocator.
//!
//! The network objective is `f(S) ≈ Σ_n w_n · g_n` (§2.2). Ansor picks the
//! next subgraph greedily by the gradient estimate the HARL paper reuses as
//! its MAB reward (Eq. 3):
//!
//! ```text
//! grad_i = w_i · [ α · (g_i(t_i) − g_i(t_i−Δt)) / Δt
//!                + (1−α) · min( −g_i/t_i,  β·C_i/maxV − g_i ) ]
//! ```
//!
//! where `C_i` is task `i`'s FLOP count and `maxV` the best throughput among
//! similar tasks. The first term extrapolates recent history; the second
//! bounds the remaining headroom optimistically. Ansor selects
//! `argmax |grad_i|` (deterministic, greedy — Table 1); HARL feeds
//! `|grad_i|` into SW-UCB instead.

use serde::{Deserialize, Serialize};

/// Static description of one tuning task (subgraph).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskInfo {
    /// Task (subgraph) name.
    pub name: String,
    /// Appearance count `w_n`.
    pub weight: f64,
    /// FLOPs per execution `C_i`.
    pub flops: f64,
    /// Similarity group (tasks with the same key are "similar" — same
    /// anchor kind and iterator structure).
    pub similarity_key: u64,
}

/// Mutable tuning state of one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskState {
    /// Best execution time found so far `g_i(t_i)` (∞ before any trial).
    pub best_time: f64,
    /// Trials allocated so far `t_i`.
    pub trials: u64,
    /// Checkpoints `(t, g(t))` after every allocation round.
    pub history: Vec<(u64, f64)>,
}

impl Default for TaskState {
    fn default() -> Self {
        TaskState {
            best_time: f64::INFINITY,
            trials: 0,
            history: Vec::new(),
        }
    }
}

impl TaskState {
    /// Records the outcome of an allocation round.
    pub fn record_round(&mut self, trials_used: u64, best_time: f64) {
        self.trials += trials_used;
        self.best_time = self.best_time.min(best_time);
        self.history.push((self.trials, self.best_time));
    }

    /// `g_i(t_i − Δt)`: best time known `dt` trials ago. Falls back to the
    /// earliest checkpoint when `dt` reaches back into the first round, and
    /// to ∞ when it reaches before any trial at all.
    pub fn best_time_before(&self, dt: u64) -> f64 {
        let cutoff = self.trials.saturating_sub(dt);
        if cutoff == 0 {
            return f64::INFINITY;
        }
        self.history
            .iter()
            .take_while(|(t, _)| *t <= cutoff)
            .last()
            .or_else(|| self.history.first())
            .map(|(_, g)| *g)
            .unwrap_or(f64::INFINITY)
    }
}

/// Parameters of the gradient estimate (Table 5: α = 0.2, β = 2).
#[derive(Debug, Clone, Copy)]
pub struct GradientParams {
    /// Weight of the history slope term (Table 5: 0.2).
    pub alpha: f64,
    /// Similar-task bound multiplier (Table 5: 2).
    pub beta: f64,
    /// Backward window Δt in trials.
    pub dt: u64,
}

impl Default for GradientParams {
    fn default() -> Self {
        GradientParams {
            alpha: 0.2,
            beta: 2.0,
            dt: 64,
        }
    }
}

/// Computes `|grad_i|` for task `i`. Returns `f64::INFINITY` for untried
/// tasks so they are explored first.
pub fn task_gradient(
    infos: &[TaskInfo],
    states: &[TaskState],
    i: usize,
    p: &GradientParams,
) -> f64 {
    let info = &infos[i];
    let st = &states[i];
    if st.trials == 0 || !st.best_time.is_finite() {
        return f64::INFINITY;
    }
    let g = st.best_time;

    // history slope (≤ 0 when improving)
    let g_prev = st.best_time_before(p.dt);
    let term1 = if g_prev.is_finite() {
        (g - g_prev) / p.dt as f64
    } else {
        0.0
    };

    // optimistic headroom: either keep the historical rate −g/t, or close
    // the gap to β × the time predicted from similar tasks' throughput.
    let term2a = -g / st.trials as f64;
    let max_v = infos
        .iter()
        .zip(states)
        .enumerate()
        .filter(|(j, (inf, s))| {
            *j != i && inf.similarity_key == info.similarity_key && s.best_time.is_finite()
        })
        .map(|(_, (inf, s))| inf.flops / s.best_time)
        .fold(f64::NAN, f64::max);
    let term2 = if max_v.is_finite() && max_v > 0.0 {
        let predicted = p.beta * info.flops / max_v;
        term2a.min(predicted - g)
    } else {
        term2a
    };

    (info.weight * (p.alpha * term1 + (1.0 - p.alpha) * term2)).abs()
}

/// Ansor's greedy task scheduler: round-robin warm-up, then
/// `argmax |grad|` (deterministic).
#[derive(Debug, Clone)]
pub struct GreedyTaskScheduler {
    /// Gradient-estimate parameters.
    pub params: GradientParams,
}

impl GreedyTaskScheduler {
    /// A greedy scheduler with the given gradient parameters.
    pub fn new(params: GradientParams) -> Self {
        GreedyTaskScheduler { params }
    }

    /// Picks the next task to tune.
    pub fn select(&self, infos: &[TaskInfo], states: &[TaskState]) -> usize {
        // warm-up: first untried task
        if let Some(i) = states.iter().position(|s| s.trials == 0) {
            return i;
        }
        (0..infos.len())
            .max_by(|&a, &b| {
                task_gradient(infos, states, a, &self.params)
                    .partial_cmp(&task_gradient(infos, states, b, &self.params))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }
}

/// Weighted network latency estimate `f(S) = Σ w_n g_n` over current bests.
pub fn weighted_latency(infos: &[TaskInfo], states: &[TaskState]) -> f64 {
    infos
        .iter()
        .zip(states)
        .map(|(i, s)| {
            if s.best_time.is_finite() {
                i.weight * s.best_time
            } else {
                f64::INFINITY
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_tasks(n: usize) -> (Vec<TaskInfo>, Vec<TaskState>) {
        let infos = (0..n)
            .map(|i| TaskInfo {
                name: format!("t{i}"),
                weight: 1.0,
                flops: 1e9,
                similarity_key: 7,
            })
            .collect();
        let states = (0..n).map(|_| TaskState::default()).collect();
        (infos, states)
    }

    #[test]
    fn warmup_visits_all_tasks() {
        let (infos, mut states) = mk_tasks(3);
        let sched = GreedyTaskScheduler::new(GradientParams::default());
        let mut visited = [false; 3];
        for _ in 0..3 {
            let i = sched.select(&infos, &states);
            visited[i] = true;
            states[i].record_round(10, 1.0);
        }
        assert!(visited.iter().all(|&v| v));
    }

    #[test]
    fn greedy_prefers_improving_heavy_task() {
        let (mut infos, mut states) = mk_tasks(2);
        infos[0].weight = 10.0; // heavy task
                                // both warmed up with same time
        states[0].record_round(64, 1.0);
        states[1].record_round(64, 1.0);
        // task 0 keeps improving, task 1 stagnates
        states[0].record_round(64, 0.5);
        states[1].record_round(64, 1.0);
        let sched = GreedyTaskScheduler::new(GradientParams::default());
        assert_eq!(sched.select(&infos, &states), 0);
    }

    #[test]
    fn similar_task_bound_raises_priority() {
        let p = GradientParams::default();
        let (infos, mut states) = mk_tasks(2);
        // both tried; task 1 is 100x slower than its similar peer task 0,
        // so the similarity bound predicts big headroom for task 1.
        states[0].record_round(64, 0.001);
        states[1].record_round(64, 0.1);
        let g0 = task_gradient(&infos, &states, 0, &p);
        let g1 = task_gradient(&infos, &states, 1, &p);
        assert!(
            g1 > g0,
            "lagging similar task should be prioritised: {g1} vs {g0}"
        );
    }

    #[test]
    fn untried_task_has_infinite_gradient() {
        let (infos, states) = mk_tasks(2);
        assert!(task_gradient(&infos, &states, 0, &GradientParams::default()).is_infinite());
    }

    #[test]
    fn best_time_before_walks_history() {
        let mut st = TaskState::default();
        st.record_round(10, 5.0);
        st.record_round(10, 3.0);
        st.record_round(10, 2.0);
        // trials = 30; 10 trials ago → cutoff 20 → best was 3.0
        assert_eq!(st.best_time_before(10), 3.0);
        assert_eq!(st.best_time_before(25), 5.0);
        assert!(st.best_time_before(31).is_infinite());
    }

    #[test]
    fn weighted_latency_sums() {
        let (mut infos, mut states) = mk_tasks(2);
        infos[1].weight = 3.0;
        states[0].record_round(1, 2.0);
        states[1].record_round(1, 1.0);
        assert!((weighted_latency(&infos, &states) - 5.0).abs() < 1e-12);
    }
}
