//! Flextensor-like fixed-length RL tuner.
//!
//! Reproduces the comparator behind Observation 2 / Fig. 1(c): an RL agent
//! explores schedule tracks of a *fixed* length with a *fixed* sketch (no
//! subgraph/sketch hierarchy — Table 1), measuring every visited schedule
//! on hardware. The position of the best-performing schedule along each
//! track (the *critical step*) is recorded, showing that most tracks peak
//! early and the remaining steps are wasted.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use harl_nnet::{PpoAgent, PpoConfig};
use harl_par::ParallelismOpts;
use harl_tensor_ir::{
    apply_action, compute_at_mask, extract_features, extract_features_into, generate_sketches,
    parallel_mask, tile_action_mask, unroll_mask, Action, ActionSpace, Schedule, Sketch, StepDir,
    Subgraph,
};
use harl_tensor_sim::{Measurer, TuneTrace};
use harl_verify::{Analyzer, LintStats};

/// Configuration of the fixed-length tuner.
#[derive(Debug, Clone)]
pub struct FlextensorConfig {
    /// Fixed track length `L`.
    pub episode_len: usize,
    /// Tracks per episode `I`.
    pub tracks: usize,
    /// PPO settings for the fixed-length agent.
    pub ppo: PpoConfig,
    /// Train the networks every `T_rl` steps.
    pub train_interval: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlextensorConfig {
    fn default() -> Self {
        FlextensorConfig {
            episode_len: 16,
            tracks: 8,
            ppo: PpoConfig::default(),
            train_interval: 2,
            seed: 0xf1e,
        }
    }
}

/// Relative position of the best-performing schedule on one track.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CriticalStep {
    /// Step index of the best schedule (0 = initial sample).
    pub position: usize,
    /// Track length (steps actually taken).
    pub length: usize,
}

impl CriticalStep {
    /// Position normalized to `[0, 1]` (the x-axis of Fig. 1(c) / 7(b)).
    pub fn relative(&self) -> f64 {
        if self.length == 0 {
            0.0
        } else {
            self.position as f64 / self.length as f64
        }
    }
}

/// Serializable snapshot of a [`FlextensorTuner`]'s mutable search state.
///
/// The graph, config, and measurer are not captured; restore into a tuner
/// constructed with the identical workload, config, and seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlextensorTunerState {
    /// PPO agent (networks, optimizer moments, replay buffer).
    pub agent: PpoAgent,
    /// Best noise-free execution time found.
    pub best_time: f64,
    /// The schedule achieving `best_time`.
    pub best_schedule: Option<Schedule>,
    /// Per-track critical steps.
    pub critical_steps: Vec<CriticalStep>,
    /// Hardware measurements consumed.
    pub trials_used: u64,
    /// Best-so-far curve.
    pub trace: TuneTrace,
    /// Lint counters.
    pub lint_stats: LintStats,
    /// Raw xoshiro256** state of the search RNG.
    pub rng: [u64; 4],
}

/// The fixed-length RL tuner.
pub struct FlextensorTuner<'m> {
    /// The operator being tuned (fixed first sketch).
    pub graph: Subgraph,
    sketch: Sketch,
    space: ActionSpace,
    agent: PpoAgent,
    measurer: &'m Measurer,
    /// Best noise-free execution time found.
    pub best_time: f64,
    /// The schedule achieving `best_time`.
    pub best_schedule: Option<Schedule>,
    /// Per-track critical steps (Fig. 1(c)).
    pub critical_steps: Vec<CriticalStep>,
    /// Hardware measurements consumed.
    pub trials_used: u64,
    /// Best-so-far curve.
    pub trace: TuneTrace,
    /// Lint findings over every proposed schedule; rejected ones are never
    /// measured on hardware.
    pub lint_stats: LintStats,
    analyzer: Analyzer,
    /// Observation only; never part of [`FlextensorTunerState`].
    tracer: harl_obs::Tracer,
    cfg: FlextensorConfig,
    rng: StdRng,
}

impl<'m> FlextensorTuner<'m> {
    /// Creates a tuner over the first (fixed) sketch of `graph`.
    pub fn new(graph: Subgraph, measurer: &'m Measurer, cfg: FlextensorConfig) -> Self {
        let target = measurer.hardware().target();
        // fixed sketch: the first (plain multi-level tiling) — Table 1.
        let sketch = generate_sketches(&graph, target)
            .into_iter()
            .next()
            .expect("subgraph has at least one sketch");
        let space = ActionSpace::of(&sketch);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ graph.name.len() as u64);
        let head_sizes = [
            space.tile_actions(),
            StepDir::COUNT,
            StepDir::COUNT,
            StepDir::COUNT,
        ];
        let mut agent = PpoAgent::new(
            harl_tensor_ir::FEATURE_DIM,
            &head_sizes,
            cfg.ppo.clone(),
            &mut rng,
        );
        agent.set_threads(harl_par::ppo_threads_from_env());
        FlextensorTuner {
            graph,
            sketch,
            space,
            agent,
            measurer,
            best_time: f64::INFINITY,
            best_schedule: None,
            critical_steps: Vec::new(),
            trials_used: 0,
            trace: TuneTrace::new(),
            lint_stats: LintStats::new(),
            analyzer: Analyzer::for_hardware(measurer.hardware()),
            tracer: harl_obs::Tracer::disabled(),
            cfg,
            rng,
        }
    }

    /// Attaches a tracer: each episode becomes a `flex_episode` span.
    /// Tracing never changes the search — checkpoints stay byte-equal
    /// with it on or off.
    pub fn set_tracer(&mut self, tracer: harl_obs::Tracer) {
        self.agent.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Applies thread-pool widths. Flextensor measures every candidate on
    /// hardware (no scoring pipeline), so only the PPO width applies.
    /// Results are bit-identical at any width.
    pub fn set_parallelism(&mut self, opts: ParallelismOpts) {
        self.agent.set_threads(opts.ppo_threads);
    }

    fn masks(&self, s: &Schedule) -> Vec<Vec<bool>> {
        let target = self.measurer.hardware().target();
        vec![
            tile_action_mask(&self.sketch, s, &self.space),
            compute_at_mask(&self.sketch, s).to_vec(),
            parallel_mask(&self.sketch, s).to_vec(),
            unroll_mask(target, s).to_vec(),
        ]
    }

    /// Runs one fixed-length episode; returns trials used.
    pub fn episode(&mut self, budget: u64) -> u64 {
        if budget == 0 {
            return 0;
        }
        let _episode_span = self
            .tracer
            .span_with("flex_episode", &[("tracks", self.cfg.tracks.into())]);
        let target = self.measurer.hardware().target();
        let mut used = 0u64;

        // sample and measure the initial schedules
        let mut states: Vec<Schedule> = Vec::with_capacity(self.cfg.tracks);
        let mut perf: Vec<f64> = Vec::with_capacity(self.cfg.tracks);
        let mut best_pos: Vec<usize> = vec![0; self.cfg.tracks];
        let mut best_perf: Vec<f64> = Vec::with_capacity(self.cfg.tracks);
        for _ in 0..self.cfg.tracks {
            if used >= budget {
                break;
            }
            let s = Schedule::random(&self.sketch, target, &mut self.rng);
            let diags = self.analyzer.analyze(&self.graph, &self.sketch, target, &s);
            if self.lint_stats.record(&diags) {
                continue;
            }
            let m = self.measurer.measure(&self.graph, &self.sketch, &s);
            used += 1;
            self.note_measurement(&s, m.time);
            perf.push(1.0 / m.time);
            best_perf.push(1.0 / m.time);
            states.push(s);
        }

        let mut steps_taken = 0usize;
        // scratch for the post-action feature vector: `record` only borrows
        // it, so one buffer serves every step of the episode
        let mut next_feat: Vec<f32> = Vec::new();
        'outer: for step in 1..=self.cfg.episode_len {
            for i in 0..states.len() {
                if used >= budget {
                    break 'outer;
                }
                let feat = extract_features(&self.graph, &self.sketch, target, &states[i]);
                let masks = self.masks(&states[i]);
                let (acts, logp) = self.agent.act(&feat, &masks, &mut self.rng);
                let action = Action {
                    tile: acts[0],
                    compute_at: StepDir::from_index(acts[1]),
                    parallel: StepDir::from_index(acts[2]),
                    unroll: StepDir::from_index(acts[3]),
                };
                let next = apply_action(&self.sketch, target, &states[i], &action);
                // reject illegal proposals before spending a measurement
                let diags = self
                    .analyzer
                    .analyze(&self.graph, &self.sketch, target, &next);
                if self.lint_stats.record(&diags) {
                    continue;
                }
                let m = self.measurer.measure(&self.graph, &self.sketch, &next);
                used += 1;
                self.note_measurement(&next, m.time);
                let new_perf = 1.0 / m.time;
                let reward = ((new_perf - perf[i]) / perf[i]) as f32;
                extract_features_into(&self.graph, &self.sketch, target, &next, &mut next_feat);
                self.agent
                    .record(feat, acts, logp, reward, &next_feat, masks);
                if new_perf > best_perf[i] {
                    best_perf[i] = new_perf;
                    best_pos[i] = step;
                }
                perf[i] = new_perf;
                states[i] = next;
            }
            steps_taken = step;
            if step % self.cfg.train_interval == 0 {
                self.agent.train_step(&mut self.rng);
                self.measurer.charge_search_time(0.3);
            }
        }

        for &pos in best_pos.iter().take(states.len()) {
            self.critical_steps.push(CriticalStep {
                position: pos,
                length: steps_taken,
            });
        }
        self.trials_used += used;
        self.trace.record(
            self.measurer.trials(),
            self.measurer.sim_seconds(),
            self.best_time,
        );
        used
    }

    fn note_measurement(&mut self, s: &Schedule, _measured: f64) {
        let truth = self.measurer.true_time(&self.graph, &self.sketch, s);
        if truth < self.best_time {
            self.best_time = truth;
            self.best_schedule = Some(s.clone());
        }
    }

    /// Tunes with a total measurement budget.
    pub fn tune(&mut self, total_trials: u64) {
        while self.trials_used < total_trials {
            let remaining = total_trials - self.trials_used;
            if self.episode(remaining) == 0 {
                break;
            }
        }
    }

    /// Coordinate-descent fine-tune pass over the current best schedule
    /// (see [`harl_mcts::coordinate_descent`]); monotone — `best_time`
    /// never regresses. Returns the trials spent. Flextensor keeps no
    /// dedup set (it measures every visited schedule), so nothing extra
    /// is recorded per measurement.
    pub fn finetune(&mut self, cfg: &harl_mcts::FinetuneConfig) -> u64 {
        let _span = self.tracer.span("flextensor_finetune");
        let target = self.measurer.hardware().target();
        harl_mcts::finetune_fields(
            cfg,
            &self.graph,
            std::slice::from_ref(&self.sketch),
            target,
            self.measurer,
            &self.analyzer,
            &mut self.lint_stats,
            |_| {},
            &mut self.best_time,
            &mut self.best_schedule,
            &mut self.trials_used,
            &mut self.trace,
        )
    }

    /// Snapshots the mutable search state for checkpointing.
    pub fn checkpoint_state(&self) -> FlextensorTunerState {
        FlextensorTunerState {
            agent: self.agent.clone(),
            best_time: self.best_time,
            best_schedule: self.best_schedule.clone(),
            critical_steps: self.critical_steps.clone(),
            trials_used: self.trials_used,
            trace: self.trace.clone(),
            lint_stats: self.lint_stats.clone(),
            rng: self.rng.state(),
        }
    }

    /// Overwrites the mutable search state from a checkpoint. The tuner
    /// must have been constructed with the same graph, config, and seed.
    pub fn restore_state(&mut self, state: FlextensorTunerState) {
        // the agent's pool width and tracer are runtime config, not search
        // state: carry them across the overwrite
        let ppo_threads = self.agent.threads();
        self.agent = state.agent;
        self.agent.set_threads(ppo_threads);
        self.agent.set_tracer(self.tracer.clone());
        // "no best yet" round-trips through JSON as null/NaN
        self.best_time = if state.best_time.is_finite() {
            state.best_time
        } else {
            f64::INFINITY
        };
        self.best_schedule = state.best_schedule;
        self.critical_steps = state.critical_steps;
        self.trials_used = state.trials_used;
        self.trace = state.trace;
        self.lint_stats = state.lint_stats;
        self.rng = StdRng::from_state(state.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_tensor_ir::workload;
    use harl_tensor_sim::{Hardware, MeasureConfig};

    fn cfg() -> FlextensorConfig {
        FlextensorConfig {
            episode_len: 6,
            tracks: 4,
            ..Default::default()
        }
    }

    #[test]
    fn episode_respects_budget() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(128, 128, 128);
        let mut t = FlextensorTuner::new(g, &measurer, cfg());
        let used = t.episode(10);
        assert!(used <= 10);
        assert_eq!(t.trials_used, used);
        assert_eq!(measurer.trials(), used);
        // legal proposals only: the analyzer checked but never rejected
        assert!(t.lint_stats.checked >= used);
        assert_eq!(t.lint_stats.rejected, 0);
    }

    #[test]
    fn records_critical_steps_within_length() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(128, 128, 128);
        let mut t = FlextensorTuner::new(g, &measurer, cfg());
        t.tune(120);
        assert!(!t.critical_steps.is_empty());
        for cs in &t.critical_steps {
            assert!(cs.position <= cs.length);
            assert!((0.0..=1.0).contains(&cs.relative()));
        }
    }

    #[test]
    fn finds_some_improvement() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(256, 256, 256);
        let mut t = FlextensorTuner::new(g, &measurer, cfg());
        t.episode(u64::MAX >> 1);
        let first = t.best_time;
        for _ in 0..5 {
            t.episode(u64::MAX >> 1);
        }
        assert!(t.best_time <= first);
        assert!(t.best_schedule.is_some());
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let g = workload::gemm(128, 128, 128);
        let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let mut t_ref = FlextensorTuner::new(g.clone(), &m_ref, cfg());
        t_ref.episode(40);
        let ck_tuner = serde_json::to_string(&t_ref.checkpoint_state()).unwrap();
        let ck_measurer = serde_json::to_string(&m_ref.state()).unwrap();
        t_ref.episode(40);

        let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        m2.restore_state(&serde_json::from_str(&ck_measurer).unwrap());
        let mut t2 = FlextensorTuner::new(g, &m2, cfg());
        t2.restore_state(serde_json::from_str(&ck_tuner).unwrap());
        t2.episode(40);

        assert_eq!(t2.best_time.to_bits(), t_ref.best_time.to_bits());
        assert_eq!(t2.trials_used, t_ref.trials_used);
        assert_eq!(m2.trials(), m_ref.trials());
        assert_eq!(m2.sim_seconds().to_bits(), m_ref.sim_seconds().to_bits());
    }
}
