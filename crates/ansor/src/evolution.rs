//! Evolutionary parameter search — the schedule-exploration engine of the
//! Ansor baseline (Zheng et al., OSDI'20 §5.2).
//!
//! Each round seeds a population from the best measured schedules plus
//! fresh random samples, evolves it for a few generations under the cost
//! model's fitness (selection is fitness-proportional; offspring are
//! mutated and occasionally crossed over), and finally emits measurement
//! candidates by ε-greedy top-K: mostly the model's best, with a small
//! random fraction for exploration.

use std::collections::HashSet;

use rand::Rng;

use harl_gbt::{CostModel, ScoringPipeline};
use harl_tensor_ir::{
    crossover, extract_features_into, mutate, Schedule, Sketch, Subgraph, Target,
};

/// Evolutionary-search hyper-parameters (defaults follow Ansor's published
/// settings scaled to this simulator).
#[derive(Debug, Clone)]
pub struct EvoConfig {
    /// Population size per generation.
    pub population: usize,
    /// Generations evolved per round.
    pub generations: usize,
    /// Fraction of the initial population seeded from best measured
    /// schedules.
    pub elite_ratio: f64,
    /// Probability a child is produced by crossover (same-sketch parents);
    /// otherwise by mutation.
    pub crossover_prob: f64,
    /// Mutations applied to every child.
    pub mutations_per_child: usize,
    /// Fraction of measurement candidates picked at random (ε-greedy).
    pub eps_greedy: f64,
}

impl Default for EvoConfig {
    fn default() -> Self {
        EvoConfig {
            population: 256,
            generations: 4,
            elite_ratio: 0.25,
            crossover_prob: 0.3,
            mutations_per_child: 2,
            eps_greedy: 0.05,
        }
    }
}

/// One evolutionary round: returns up to `num_candidates` distinct
/// schedules to measure, avoiding anything whose dedup key is in `seen`.
///
/// `elites` are previously measured good schedules (best first); sketches
/// are chosen uniformly for random seeding (Ansor's sketch policy).
///
/// Fitness evaluation goes through `pipeline`: each generation (and the
/// final ε-greedy pass) scores the whole population in one batch, with
/// surviving elites and duplicate offspring hitting the feature cache.
/// Scores are bit-identical to per-candidate `extract → score`, so the
/// RNG stream and selection are unchanged from the serial implementation.
#[allow(clippy::too_many_arguments)]
pub fn evolve_candidates<R: Rng + ?Sized>(
    graph: &Subgraph,
    sketches: &[Sketch],
    target: Target,
    cost_model: &CostModel,
    elites: &[Schedule],
    seen: &HashSet<u64>,
    num_candidates: usize,
    cfg: &EvoConfig,
    pipeline: &mut ScoringPipeline,
    rng: &mut R,
) -> Vec<Schedule> {
    assert!(
        !sketches.is_empty(),
        "subgraph must have at least one sketch"
    );
    // cache keys are schedule fingerprints, valid only for this round's
    // fixed (graph, sketch-set, target) context
    pipeline.begin_episode();
    let extract = |s: &Schedule, buf: &mut Vec<f32>| {
        extract_features_into(graph, &sketches[s.sketch_id], target, s, buf)
    };

    // --- initial population ---------------------------------------------
    let n_elite = ((cfg.population as f64 * cfg.elite_ratio) as usize).min(elites.len());
    let mut pop: Vec<Schedule> = elites.iter().take(n_elite).cloned().collect();
    while pop.len() < cfg.population {
        let sk = &sketches[rng.gen_range(0..sketches.len())];
        pop.push(Schedule::random(sk, target, rng));
    }

    // --- generations ------------------------------------------------------
    let mut scores: Vec<f64> = Vec::new();
    for _ in 0..cfg.generations {
        pipeline.score_into(cost_model, &pop, |s| s.fingerprint(), extract, &mut scores);
        // fitness-proportional selection over positive scores
        let total: f64 = scores.iter().sum();
        let pick_parent = |rng: &mut R| -> usize {
            if total <= 0.0 {
                return rng.gen_range(0..pop.len());
            }
            let mut r = rng.gen::<f64>() * total;
            for (i, &s) in scores.iter().enumerate() {
                r -= s;
                if r <= 0.0 {
                    return i;
                }
            }
            pop.len() - 1
        };

        let mut next: Vec<Schedule> = Vec::with_capacity(cfg.population);
        // keep the single best as elite
        if let Some((bi, _)) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            next.push(pop[bi].clone());
        }
        while next.len() < cfg.population {
            let pa = pick_parent(rng);
            let mut child = if rng.gen::<f64>() < cfg.crossover_prob {
                let pb = pick_parent(rng);
                if pop[pa].sketch_id == pop[pb].sketch_id {
                    crossover(&pop[pa], &pop[pb], rng)
                } else {
                    pop[pa].clone()
                }
            } else {
                pop[pa].clone()
            };
            for _ in 0..cfg.mutations_per_child {
                child = mutate(&sketches[child.sketch_id], target, &child, rng);
            }
            next.push(child);
        }
        pop = next;
    }

    // --- ε-greedy top-K selection ----------------------------------------
    pipeline.score_into(cost_model, &pop, |s| s.fingerprint(), extract, &mut scores);
    let mut scored: Vec<(f64, Schedule)> = scores.iter().copied().zip(pop).collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let n_random = (num_candidates as f64 * cfg.eps_greedy).round() as usize;
    let mut out: Vec<Schedule> = Vec::with_capacity(num_candidates);
    let mut local_seen: HashSet<u64> = HashSet::new();
    for (_, s) in &scored {
        if out.len() + n_random >= num_candidates {
            break;
        }
        let key = s.dedup_key();
        if seen.contains(&key) || !local_seen.insert(key) {
            continue;
        }
        out.push(s.clone());
    }
    // random exploration tail (fresh samples, not just population members)
    let mut guard = 0;
    while out.len() < num_candidates && guard < num_candidates * 50 {
        guard += 1;
        let sk = &sketches[rng.gen_range(0..sketches.len())];
        let s = Schedule::random(sk, target, rng);
        let key = s.dedup_key();
        if seen.contains(&key) || !local_seen.insert(key) {
            continue;
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_gbt::GbtParams;
    use harl_tensor_ir::{extract_features, generate_sketches, workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Subgraph, Vec<Sketch>) {
        let g = workload::gemm(256, 256, 256);
        let sk = generate_sketches(&g, Target::Cpu);
        (g, sk)
    }

    #[test]
    fn produces_requested_distinct_candidates() {
        let (g, sk) = setup();
        let cm = CostModel::new(GbtParams::default());
        let mut rng = StdRng::seed_from_u64(1);
        let cands = evolve_candidates(
            &g,
            &sk,
            Target::Cpu,
            &cm,
            &[],
            &HashSet::new(),
            32,
            &EvoConfig::default(),
            &mut ScoringPipeline::new(1, 1024),
            &mut rng,
        );
        assert_eq!(cands.len(), 32);
        let keys: HashSet<u64> = cands.iter().map(Schedule::dedup_key).collect();
        assert_eq!(keys.len(), 32, "candidates must be distinct");
        for c in &cands {
            c.validate(&sk[c.sketch_id], Target::Cpu).expect("valid");
        }
    }

    #[test]
    fn avoids_already_measured() {
        let (g, sk) = setup();
        let cm = CostModel::new(GbtParams::default());
        let mut rng = StdRng::seed_from_u64(2);
        let first = evolve_candidates(
            &g,
            &sk,
            Target::Cpu,
            &cm,
            &[],
            &HashSet::new(),
            16,
            &EvoConfig::default(),
            &mut ScoringPipeline::new(1, 1024),
            &mut rng,
        );
        let seen: HashSet<u64> = first.iter().map(Schedule::dedup_key).collect();
        let second = evolve_candidates(
            &g,
            &sk,
            Target::Cpu,
            &cm,
            &first,
            &seen,
            16,
            &EvoConfig::default(),
            &mut ScoringPipeline::new(1, 1024),
            &mut rng,
        );
        for s in &second {
            assert!(!seen.contains(&s.dedup_key()));
        }
    }

    #[test]
    fn trained_model_biases_selection() {
        // train the cost model to prefer high unroll_idx; evolution should
        // then emit mostly high-unroll candidates.
        let (g, sk) = setup();
        let mut cm = CostModel::new(GbtParams::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut batch = Vec::new();
        for _ in 0..200 {
            let s = Schedule::random(&sk[0], Target::Cpu, &mut rng);
            let f = extract_features(&g, &sk[0], Target::Cpu, &s);
            let y = 1e9 * (1.0 + s.unroll_idx as f64 * 10.0);
            batch.push((f, y));
        }
        cm.update_batch(batch);
        let cands = evolve_candidates(
            &g,
            &sk,
            Target::Cpu,
            &cm,
            &[],
            &HashSet::new(),
            32,
            &EvoConfig::default(),
            &mut ScoringPipeline::new(1, 1024),
            &mut rng,
        );
        let max_unroll = Target::Cpu.unroll_depths().len() - 1;
        let high = cands.iter().filter(|c| c.unroll_idx == max_unroll).count();
        assert!(
            high > 16,
            "evolution should exploit the model: {high}/32 high-unroll"
        );
    }
}
