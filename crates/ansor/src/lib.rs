//! # harl-ansor
//!
//! The baselines of the paper:
//!
//! * **Ansor** (Zheng et al., OSDI'20) — the state-of-the-art statistical
//!   auto-scheduler HARL compares against: evolutionary parameter search
//!   guided by an on-line cost model, uniform sketch selection, ε-greedy
//!   measurement selection, and the greedy gradient task scheduler for
//!   end-to-end networks (the formulas HARL reuses in Eq. 3).
//! * **Flextensor-like** fixed-length RL tuner — backs Observation 2 /
//!   Fig. 1(c) and the fixed-vs-adaptive comparisons.

pub mod evolution;
pub mod flextensor;
pub mod task_sched;
pub mod tuner;

pub use evolution::{evolve_candidates, EvoConfig};
pub use flextensor::{CriticalStep, FlextensorConfig, FlextensorTuner, FlextensorTunerState};
pub use task_sched::{
    task_gradient, weighted_latency, GradientParams, GreedyTaskScheduler, TaskInfo, TaskState,
};
pub use tuner::{
    similarity_key, AnsorConfig, AnsorConfigBuilder, AnsorNetworkTuner, AnsorTuner,
    AnsorTunerState, NetRound,
};
