//! The Ansor baseline tuner: per-subgraph evolutionary rounds and the
//! greedy gradient task scheduler for end-to-end networks.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use harl_gbt::{CostModel, GbtParams};
use harl_tensor_ir::{extract_features, generate_sketches, Schedule, Sketch, Subgraph, Target};
use harl_tensor_sim::{Measurer, TuneTrace};
use harl_verify::{Analyzer, LintStats};

use crate::evolution::{evolve_candidates, EvoConfig};
use crate::task_sched::{
    weighted_latency, GradientParams, GreedyTaskScheduler, TaskInfo, TaskState,
};

/// Configuration shared by Ansor operator and network tuning.
#[derive(Debug, Clone)]
pub struct AnsorConfig {
    /// Measurement candidates per exploration round (the paper sets HARL
    /// and Ansor to the same number for fairness, §6.2).
    pub measure_per_round: usize,
    /// Evolutionary-search parameters.
    pub evo: EvoConfig,
    /// Cost-model parameters.
    pub gbt: GbtParams,
    /// Simulated seconds of fixed algorithm overhead charged per round
    /// (cost-model retraining, bookkeeping).
    pub round_overhead: f64,
    /// Simulated seconds per cost-model evaluation during evolution.
    pub eval_cost: f64,
    /// RNG seed.
    pub seed: u64,
    /// Elite pool size carried between rounds.
    pub elite_pool: usize,
}

impl Default for AnsorConfig {
    fn default() -> Self {
        AnsorConfig {
            measure_per_round: 64,
            evo: EvoConfig::default(),
            gbt: GbtParams::default(),
            round_overhead: 2.0,
            eval_cost: 5e-4,
            seed: 0xa5,
            elite_pool: 32,
        }
    }
}

/// Tunes one subgraph with evolutionary search (Ansor §5).
pub struct AnsorTuner<'m> {
    /// The subgraph being tuned.
    pub graph: Subgraph,
    /// Its generated sketches.
    pub sketches: Vec<Sketch>,
    target: Target,
    measurer: &'m Measurer,
    cost_model: CostModel,
    seen: HashSet<u64>,
    /// `(measured time, schedule)` sorted best-first.
    elites: Vec<(f64, Schedule)>,
    /// Best noise-free execution time found.
    pub best_time: f64,
    /// The schedule achieving `best_time`.
    pub best_schedule: Option<Schedule>,
    /// Hardware measurements consumed so far.
    pub trials_used: u64,
    /// Best-so-far curve.
    pub trace: TuneTrace,
    /// Lint findings over every evolved candidate; rejected ones never
    /// reach the measurer.
    pub lint_stats: LintStats,
    analyzer: Analyzer,
    cfg: AnsorConfig,
    rng: StdRng,
}

impl<'m> AnsorTuner<'m> {
    /// Creates a tuner; sketches are generated for the measurer's target.
    pub fn new(graph: Subgraph, measurer: &'m Measurer, cfg: AnsorConfig) -> Self {
        let target = measurer.hardware().target();
        let sketches = generate_sketches(&graph, target);
        let seed = cfg.seed ^ graph.name.len() as u64;
        AnsorTuner {
            graph,
            sketches,
            target,
            measurer,
            cost_model: CostModel::new(cfg.gbt.clone()),
            seen: HashSet::new(),
            elites: Vec::new(),
            best_time: f64::INFINITY,
            best_schedule: None,
            trials_used: 0,
            trace: TuneTrace::new(),
            lint_stats: LintStats::new(),
            analyzer: Analyzer::for_hardware(measurer.hardware()),
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One exploration round with up to `budget` measurements; returns the
    /// number of trials actually used.
    pub fn round(&mut self, budget: usize) -> usize {
        if budget == 0 {
            return 0;
        }
        let k = budget.min(self.cfg.measure_per_round);
        let elite_scheds: Vec<Schedule> = self.elites.iter().map(|(_, s)| s.clone()).collect();
        let mut cands = evolve_candidates(
            &self.graph,
            &self.sketches,
            self.target,
            &self.cost_model,
            &elite_scheds,
            &self.seen,
            k,
            &self.cfg.evo,
            &mut self.rng,
        );
        // drop illegal candidates before they reach the measurer
        cands.retain(|s| {
            let sk = &self.sketches[s.sketch_id];
            let diags = self.analyzer.analyze(&self.graph, sk, self.target, s);
            !self.lint_stats.record(&diags)
        });
        if cands.is_empty() {
            return 0;
        }

        let mut updates = Vec::with_capacity(cands.len());
        for s in &cands {
            let sk = &self.sketches[s.sketch_id];
            let m = self.measurer.measure(&self.graph, sk, s);
            self.seen.insert(s.dedup_key());
            let truth = self.measurer.true_time(&self.graph, sk, s);
            if truth < self.best_time {
                self.best_time = truth;
                self.best_schedule = Some(s.clone());
            }
            self.elites.push((m.time, s.clone()));
            updates.push((
                extract_features(&self.graph, sk, self.target, s),
                m.flops_per_sec,
            ));
        }
        self.cost_model.update_batch(updates);

        self.elites
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.elites.truncate(self.cfg.elite_pool);

        // simulated algorithm overhead: fixed + per-fitness-evaluation
        self.measurer.charge_search_time(
            self.cfg.round_overhead
                + (self.cfg.evo.population * self.cfg.evo.generations) as f64 * self.cfg.eval_cost,
        );
        self.trials_used += cands.len() as u64;
        self.trace.record(
            self.measurer.trials(),
            self.measurer.sim_seconds(),
            self.best_time,
        );
        cands.len()
    }

    /// Runs rounds until `total_trials` measurements have been used.
    pub fn tune(&mut self, total_trials: u64) {
        while self.trials_used < total_trials {
            let remaining = (total_trials - self.trials_used) as usize;
            if self.round(remaining) == 0 {
                break;
            }
        }
    }
}

/// One allocation decision in a network tuning run.
#[derive(Debug, Clone, Copy)]
pub struct NetRound {
    /// Index of the tuned task.
    pub task: usize,
    /// Cumulative trials after this round.
    pub trials_after: u64,
    /// Weighted network latency estimate after this round.
    pub latency: f64,
}

/// End-to-end network tuning with Ansor's greedy gradient task scheduler.
pub struct AnsorNetworkTuner<'m> {
    /// Per-subgraph tuners.
    pub tuners: Vec<AnsorTuner<'m>>,
    /// Static task descriptions.
    pub infos: Vec<TaskInfo>,
    /// Mutable tuning state per task.
    pub states: Vec<TaskState>,
    scheduler: GreedyTaskScheduler,
    /// Allocation decisions in order.
    pub rounds: Vec<NetRound>,
    /// Weighted-latency best-so-far curve.
    pub trace: TuneTrace,
    total_trials_used: u64,
}

/// Builds the similarity key of a subgraph (anchor kind + iterator shape).
pub fn similarity_key(graph: &Subgraph) -> u64 {
    let a = graph.anchor_stage();
    (a.num_spatial() as u64) << 32 | a.num_reduction() as u64
}

impl<'m> AnsorNetworkTuner<'m> {
    /// Creates one Ansor tuner per subgraph sharing `measurer`.
    pub fn new(
        subgraphs: Vec<Subgraph>,
        measurer: &'m Measurer,
        cfg: AnsorConfig,
        grad: GradientParams,
    ) -> Self {
        let infos = subgraphs
            .iter()
            .map(|g| TaskInfo {
                name: g.name.clone(),
                weight: g.weight,
                flops: g.flops(),
                similarity_key: similarity_key(g),
            })
            .collect();
        let states = subgraphs.iter().map(|_| TaskState::default()).collect();
        let tuners = subgraphs
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(i as u64 * 0x9e37);
                AnsorTuner::new(g, measurer, c)
            })
            .collect();
        AnsorNetworkTuner {
            tuners,
            infos,
            states,
            scheduler: GreedyTaskScheduler::new(grad),
            rounds: Vec::new(),
            trace: TuneTrace::new(),
            total_trials_used: 0,
        }
    }

    /// Weighted latency estimate `Σ w_n g_n` of the current bests.
    pub fn network_latency(&self) -> f64 {
        weighted_latency(&self.infos, &self.states)
    }

    /// One task-scheduler step: pick a task, run one tuning round on it.
    /// Returns the trials used (0 when `budget` is exhausted).
    pub fn step(&mut self, budget: u64) -> u64 {
        if budget == 0 {
            return 0;
        }
        let task = self.scheduler.select(&self.infos, &self.states);
        let used = self.tuners[task].round(budget as usize) as u64;
        if used == 0 {
            return 0;
        }
        self.states[task].record_round(used, self.tuners[task].best_time);
        self.total_trials_used += used;
        let latency = self.network_latency();
        self.rounds.push(NetRound {
            task,
            trials_after: self.total_trials_used,
            latency,
        });
        if latency.is_finite() {
            let m = &self.tuners[0].measurer;
            self.trace.record(m.trials(), m.sim_seconds(), latency);
        }
        used
    }

    /// Tunes the whole network for `total_trials` measurements.
    pub fn tune(&mut self, total_trials: u64) {
        while self.total_trials_used < total_trials {
            let remaining = total_trials - self.total_trials_used;
            if self.step(remaining) == 0 {
                break;
            }
        }
    }

    /// Per-task trial allocations `{T^n}`.
    pub fn allocations(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.trials).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_tensor_ir::workload;
    use harl_tensor_sim::{Hardware, MeasureConfig};

    fn small_cfg() -> AnsorConfig {
        AnsorConfig {
            measure_per_round: 16,
            evo: EvoConfig {
                population: 64,
                generations: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn operator_tuning_improves_over_random() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(256, 256, 256);
        let mut t = AnsorTuner::new(g, &measurer, small_cfg());
        t.round(16);
        let first = t.best_time;
        t.tune(160);
        assert!(t.best_time <= first);
        assert!(t.best_schedule.is_some());
        assert!(t.trials_used >= 150, "used {}", t.trials_used);
        // evolved candidates all pass the analyzer (legal by construction)
        assert!(t.lint_stats.checked >= t.trials_used);
        assert_eq!(t.lint_stats.rejected, 0);
        // improvement should be real: best beats the first round by some margin
        assert!(
            t.best_time < first * 0.999,
            "no improvement: first {first}, final {}",
            t.best_time
        );
    }

    #[test]
    fn trace_is_monotone_and_counts_trials() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(128, 128, 128);
        let mut t = AnsorTuner::new(g, &measurer, small_cfg());
        t.tune(64);
        assert_eq!(t.trace.total_trials(), measurer.trials());
        let times: Vec<f64> = t.trace.points.iter().map(|p| p.best_time).collect();
        assert!(times.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn network_tuning_allocates_all_tasks() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let graphs = vec![
            workload::gemm(128, 128, 128),
            workload::gemm(256, 256, 256),
            workload::softmax(512, 128),
        ];
        let mut nt =
            AnsorNetworkTuner::new(graphs, &measurer, small_cfg(), GradientParams::default());
        nt.tune(32 * 6);
        let alloc = nt.allocations();
        assert!(
            alloc.iter().all(|&a| a > 0),
            "warm-up must touch all tasks: {alloc:?}"
        );
        assert_eq!(alloc.iter().sum::<u64>(), nt.total_trials_used);
        assert!(nt.network_latency().is_finite());
        assert!(!nt.rounds.is_empty());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(128, 256, 128);
        let mut t = AnsorTuner::new(g, &measurer, small_cfg());
        t.tune(50);
        assert!(t.trials_used <= 50 || t.trials_used - 50 < 16);
        assert_eq!(t.trials_used, measurer.trials());
    }
}
