//! The Ansor baseline tuner: per-subgraph evolutionary rounds and the
//! greedy gradient task scheduler for end-to-end networks.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use harl_gbt::{CostModel, GbtParams, ScoreStats, ScoringPipeline};
use harl_par::ParallelismOpts;
use harl_store::MeasureRecord;
use harl_tensor_ir::{extract_features, generate_sketches, Schedule, Sketch, Subgraph, Target};
use harl_tensor_sim::{ConfigError, Measurer, TuneTrace};
use harl_verify::{Analyzer, LintStats};

use crate::evolution::{evolve_candidates, EvoConfig};
use crate::task_sched::{
    weighted_latency, GradientParams, GreedyTaskScheduler, TaskInfo, TaskState,
};

/// Configuration shared by Ansor operator and network tuning.
#[derive(Debug, Clone)]
pub struct AnsorConfig {
    /// Measurement candidates per exploration round (the paper sets HARL
    /// and Ansor to the same number for fairness, §6.2).
    pub measure_per_round: usize,
    /// Evolutionary-search parameters.
    pub evo: EvoConfig,
    /// Cost-model parameters.
    pub gbt: GbtParams,
    /// Simulated seconds of fixed algorithm overhead charged per round
    /// (cost-model retraining, bookkeeping).
    pub round_overhead: f64,
    /// Simulated seconds per cost-model evaluation during evolution.
    pub eval_cost: f64,
    /// RNG seed.
    pub seed: u64,
    /// Elite pool size carried between rounds.
    pub elite_pool: usize,
}

impl Default for AnsorConfig {
    fn default() -> Self {
        AnsorConfig {
            measure_per_round: 64,
            evo: EvoConfig::default(),
            gbt: GbtParams::default(),
            round_overhead: 2.0,
            eval_cost: 5e-4,
            seed: 0xa5,
            elite_pool: 32,
        }
    }
}

impl AnsorConfig {
    /// Starts a validating builder from the defaults.
    pub fn builder() -> AnsorConfigBuilder {
        AnsorConfigBuilder {
            cfg: AnsorConfig::default(),
        }
    }

    /// Checks every field without consuming the config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.measure_per_round == 0 {
            return Err(ConfigError::new(
                "ansor.measure_per_round",
                "must be positive",
            ));
        }
        if self.elite_pool == 0 {
            return Err(ConfigError::new("ansor.elite_pool", "must be positive"));
        }
        if self.evo.population == 0 {
            return Err(ConfigError::new("ansor.evo.population", "must be positive"));
        }
        if self.evo.generations == 0 {
            return Err(ConfigError::new(
                "ansor.evo.generations",
                "must be positive",
            ));
        }
        for (field, v) in [
            ("ansor.round_overhead", self.round_overhead),
            ("ansor.eval_cost", self.eval_cost),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(ConfigError::new(field, "must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

/// Validating builder for [`AnsorConfig`].
#[derive(Debug, Clone)]
pub struct AnsorConfigBuilder {
    cfg: AnsorConfig,
}

impl AnsorConfigBuilder {
    /// Measurement candidates per exploration round.
    pub fn measure_per_round(mut self, n: usize) -> Self {
        self.cfg.measure_per_round = n;
        self
    }

    /// Evolutionary-search parameters.
    pub fn evo(mut self, evo: EvoConfig) -> Self {
        self.cfg.evo = evo;
        self
    }

    /// Cost-model parameters.
    pub fn gbt(mut self, gbt: GbtParams) -> Self {
        self.cfg.gbt = gbt;
        self
    }

    /// Fixed simulated overhead charged per round.
    pub fn round_overhead(mut self, secs: f64) -> Self {
        self.cfg.round_overhead = secs;
        self
    }

    /// Simulated seconds per cost-model evaluation.
    pub fn eval_cost(mut self, secs: f64) -> Self {
        self.cfg.eval_cost = secs;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Elite pool size carried between rounds.
    pub fn elite_pool(mut self, n: usize) -> Self {
        self.cfg.elite_pool = n;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<AnsorConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Serializable snapshot of an [`AnsorTuner`]'s mutable search state.
///
/// The graph, config, and measurer are *not* captured: restoring requires a
/// tuner constructed with the identical workload, config, and seed, after
/// which [`AnsorTuner::restore_state`] overwrites the mutable fields so the
/// search continues exactly where the checkpoint left off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnsorTunerState {
    /// On-line cost model (dataset + fitted booster).
    pub cost_model: CostModel,
    /// Dedup keys of every schedule measured so far (sorted).
    pub seen: Vec<u64>,
    /// `(measured time, schedule)` elite pool, best-first.
    pub elites: Vec<(f64, Schedule)>,
    /// Best noise-free execution time found.
    pub best_time: f64,
    /// The schedule achieving `best_time`.
    pub best_schedule: Option<Schedule>,
    /// Hardware measurements consumed.
    pub trials_used: u64,
    /// Best-so-far curve.
    pub trace: TuneTrace,
    /// Lint counters.
    pub lint_stats: LintStats,
    /// Raw xoshiro256** state of the search RNG.
    pub rng: [u64; 4],
}

/// Tunes one subgraph with evolutionary search (Ansor §5).
pub struct AnsorTuner<'m> {
    /// The subgraph being tuned.
    pub graph: Subgraph,
    /// Its generated sketches.
    pub sketches: Vec<Sketch>,
    target: Target,
    measurer: &'m Measurer,
    cost_model: CostModel,
    seen: HashSet<u64>,
    /// `(measured time, schedule)` sorted best-first.
    elites: Vec<(f64, Schedule)>,
    /// Best noise-free execution time found.
    pub best_time: f64,
    /// The schedule achieving `best_time`.
    pub best_schedule: Option<Schedule>,
    /// Hardware measurements consumed so far.
    pub trials_used: u64,
    /// Best-so-far curve.
    pub trace: TuneTrace,
    /// Lint findings over every evolved candidate; rejected ones never
    /// reach the measurer.
    pub lint_stats: LintStats,
    analyzer: Analyzer,
    /// Batched fitness scoring (thread pool + feature cache). Runtime
    /// machinery, deliberately outside [`AnsorTunerState`]: its counters
    /// and thread width must not leak into checkpoints, which stay
    /// byte-equal across `HARL_SCORE_THREADS` settings.
    pipeline: ScoringPipeline,
    /// Observation only; like the pipeline, never part of checkpoints.
    tracer: harl_obs::Tracer,
    cfg: AnsorConfig,
    rng: StdRng,
}

impl<'m> AnsorTuner<'m> {
    /// Creates a tuner; sketches are generated for the measurer's target.
    pub fn new(graph: Subgraph, measurer: &'m Measurer, cfg: AnsorConfig) -> Self {
        let target = measurer.hardware().target();
        let sketches = generate_sketches(&graph, target);
        let seed = cfg.seed ^ graph.name.len() as u64;
        AnsorTuner {
            graph,
            sketches,
            target,
            measurer,
            cost_model: CostModel::new(cfg.gbt.clone()),
            seen: HashSet::new(),
            elites: Vec::new(),
            best_time: f64::INFINITY,
            best_schedule: None,
            trials_used: 0,
            trace: TuneTrace::new(),
            lint_stats: LintStats::new(),
            analyzer: Analyzer::for_hardware(measurer.hardware()),
            pipeline: ScoringPipeline::from_env(),
            tracer: harl_obs::Tracer::disabled(),
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Attaches a tracer: rounds become `ansor_round` spans with
    /// `evolve`/`measure`/`gbt_retrain` children. Tracing never changes
    /// the search — checkpoints stay byte-equal with it on or off.
    pub fn set_tracer(&mut self, tracer: harl_obs::Tracer) {
        self.pipeline.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Counters of the batched scoring pipeline (cache hits, batches,
    /// thread width).
    pub fn score_stats(&self) -> &ScoreStats {
        self.pipeline.stats()
    }

    /// Applies thread-pool widths (tests and explicit config; normally
    /// inherited from `HARL_SCORE_THREADS`). Ansor has no PPO stage, so
    /// only the scoring width applies. Scores are bit-identical at any
    /// width.
    pub fn set_parallelism(&mut self, opts: ParallelismOpts) {
        self.pipeline.set_threads(opts.score_threads);
    }

    /// The on-line cost model (diagnostics; e.g. warm-start checks).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// One exploration round with up to `budget` measurements; returns the
    /// number of trials actually used.
    pub fn round(&mut self, budget: usize) -> usize {
        if budget == 0 {
            return 0;
        }
        let round_span = self.tracer.span("ansor_round");
        let k = budget.min(self.cfg.measure_per_round);
        let evolve_span = self.tracer.span_with("evolve", &[("k", k.into())]);
        let elite_scheds: Vec<Schedule> = self.elites.iter().map(|(_, s)| s.clone()).collect();
        let mut cands = evolve_candidates(
            &self.graph,
            &self.sketches,
            self.target,
            &self.cost_model,
            &elite_scheds,
            &self.seen,
            k,
            &self.cfg.evo,
            &mut self.pipeline,
            &mut self.rng,
        );
        // drop illegal candidates before they reach the measurer
        cands.retain(|s| {
            let sk = &self.sketches[s.sketch_id];
            let diags = self.analyzer.analyze(&self.graph, sk, self.target, s);
            !self.lint_stats.record(&diags)
        });
        drop(evolve_span);
        if cands.is_empty() {
            return 0;
        }

        let measure_span = self
            .tracer
            .span_with("measure", &[("k", cands.len().into())]);
        let mut updates = Vec::with_capacity(cands.len());
        for s in &cands {
            let sk = &self.sketches[s.sketch_id];
            let m = self.measurer.measure(&self.graph, sk, s);
            self.seen.insert(s.dedup_key());
            let truth = self.measurer.true_time(&self.graph, sk, s);
            if truth < self.best_time {
                self.best_time = truth;
                self.best_schedule = Some(s.clone());
            }
            self.elites.push((m.time, s.clone()));
            updates.push((
                extract_features(&self.graph, sk, self.target, s),
                m.flops_per_sec,
            ));
        }
        drop(measure_span);
        {
            let _retrain_span = self.tracer.span("gbt_retrain");
            self.cost_model.update_batch(updates);
        }

        self.elites
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.elites.truncate(self.cfg.elite_pool);

        // simulated algorithm overhead: fixed + per-fitness-evaluation
        self.measurer.charge_search_time(
            self.cfg.round_overhead
                + (self.cfg.evo.population * self.cfg.evo.generations) as f64 * self.cfg.eval_cost,
        );
        self.trials_used += cands.len() as u64;
        self.trace.record(
            self.measurer.trials(),
            self.measurer.sim_seconds(),
            self.best_time,
        );
        drop(round_span);
        cands.len()
    }

    /// Runs rounds until `total_trials` measurements have been used.
    pub fn tune(&mut self, total_trials: u64) {
        while self.trials_used < total_trials {
            let remaining = (total_trials - self.trials_used) as usize;
            if self.round(remaining) == 0 {
                break;
            }
        }
    }

    /// Snapshots the mutable search state for checkpointing.
    pub fn checkpoint_state(&self) -> AnsorTunerState {
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        AnsorTunerState {
            cost_model: self.cost_model.clone(),
            seen,
            elites: self.elites.clone(),
            best_time: self.best_time,
            best_schedule: self.best_schedule.clone(),
            trials_used: self.trials_used,
            trace: self.trace.clone(),
            lint_stats: self.lint_stats.clone(),
            rng: self.rng.state(),
        }
    }

    /// Overwrites the mutable search state from a checkpoint. The tuner
    /// must have been constructed with the same graph, config, and seed.
    pub fn restore_state(&mut self, state: AnsorTunerState) {
        self.cost_model = state.cost_model;
        self.seen = state.seen.into_iter().collect();
        self.elites = state.elites;
        // JSON has no Infinity literal; the writer emits null which decodes
        // to NaN, so normalize "no best yet" back to +inf.
        self.best_time = if state.best_time.is_finite() {
            state.best_time
        } else {
            f64::INFINITY
        };
        self.best_schedule = state.best_schedule;
        self.trials_used = state.trials_used;
        self.trace = state.trace;
        self.lint_stats = state.lint_stats;
        self.rng = StdRng::from_state(state.rng);
    }

    /// Coordinate-descent fine-tune pass over the current best schedule
    /// (see [`harl_mcts::coordinate_descent`]); monotone — `best_time`
    /// never regresses. Returns the trials spent.
    pub fn finetune(&mut self, cfg: &harl_mcts::FinetuneConfig) -> u64 {
        let _span = self.tracer.span("ansor_finetune");
        let seen = &mut self.seen;
        harl_mcts::finetune_fields(
            cfg,
            &self.graph,
            &self.sketches,
            self.target,
            self.measurer,
            &self.analyzer,
            &mut self.lint_stats,
            |s| {
                seen.insert(s.dedup_key());
            },
            &mut self.best_time,
            &mut self.best_schedule,
            &mut self.trials_used,
            &mut self.trace,
        )
    }

    /// Warm-starts from prior measurement records of similar workloads:
    /// pre-trains the cost model on their features and seeds the elite pool
    /// with their schedules, without spending any fresh measurements.
    /// Returns how many records were usable.
    pub fn warm_start(&mut self, records: &[MeasureRecord]) -> usize {
        let key = self.graph.similarity_key();
        let mut updates = Vec::new();
        for r in records {
            if r.similarity_key != key || r.sketch_id >= self.sketches.len() {
                continue;
            }
            let sk = &self.sketches[r.sketch_id];
            if r.schedule.sketch_id != r.sketch_id || r.schedule.validate(sk, self.target).is_err()
            {
                continue;
            }
            updates.push((
                extract_features(&self.graph, sk, self.target, &r.schedule),
                r.flops_per_sec,
            ));
            self.elites.push((r.time, r.schedule.clone()));
        }
        let used = updates.len();
        if used == 0 {
            return 0;
        }
        self.cost_model.update_batch(updates);
        self.elites
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.elites.truncate(self.cfg.elite_pool);
        used
    }
}

/// One allocation decision in a network tuning run.
#[derive(Debug, Clone, Copy)]
pub struct NetRound {
    /// Index of the tuned task.
    pub task: usize,
    /// Cumulative trials after this round.
    pub trials_after: u64,
    /// Weighted network latency estimate after this round.
    pub latency: f64,
}

/// End-to-end network tuning with Ansor's greedy gradient task scheduler.
pub struct AnsorNetworkTuner<'m> {
    /// Per-subgraph tuners.
    pub tuners: Vec<AnsorTuner<'m>>,
    /// Static task descriptions.
    pub infos: Vec<TaskInfo>,
    /// Mutable tuning state per task.
    pub states: Vec<TaskState>,
    scheduler: GreedyTaskScheduler,
    /// Allocation decisions in order.
    pub rounds: Vec<NetRound>,
    /// Weighted-latency best-so-far curve.
    pub trace: TuneTrace,
    total_trials_used: u64,
    /// Observation only — see [`AnsorTuner::set_tracer`].
    tracer: harl_obs::Tracer,
}

/// Builds the similarity key of a subgraph (anchor kind + iterator shape).
pub fn similarity_key(graph: &Subgraph) -> u64 {
    graph.similarity_key()
}

impl<'m> AnsorNetworkTuner<'m> {
    /// Creates one Ansor tuner per subgraph sharing `measurer`.
    pub fn new(
        subgraphs: Vec<Subgraph>,
        measurer: &'m Measurer,
        cfg: AnsorConfig,
        grad: GradientParams,
    ) -> Self {
        let infos = subgraphs
            .iter()
            .map(|g| TaskInfo {
                name: g.name.clone(),
                weight: g.weight,
                flops: g.flops(),
                similarity_key: similarity_key(g),
            })
            .collect();
        let states = subgraphs.iter().map(|_| TaskState::default()).collect();
        let tuners = subgraphs
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(i as u64 * 0x9e37);
                AnsorTuner::new(g, measurer, c)
            })
            .collect();
        AnsorNetworkTuner {
            tuners,
            infos,
            states,
            scheduler: GreedyTaskScheduler::new(grad),
            rounds: Vec::new(),
            trace: TuneTrace::new(),
            total_trials_used: 0,
            tracer: harl_obs::Tracer::disabled(),
        }
    }

    /// Attaches a tracer to the scheduler and every per-task tuner.
    pub fn set_tracer(&mut self, tracer: harl_obs::Tracer) {
        for t in &mut self.tuners {
            t.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Weighted latency estimate `Σ w_n g_n` of the current bests.
    pub fn network_latency(&self) -> f64 {
        weighted_latency(&self.infos, &self.states)
    }

    /// One task-scheduler round: pick a task, run one tuning round on it.
    /// Returns the trials used (0 when `budget` is exhausted).
    pub fn round(&mut self, budget: u64) -> u64 {
        if budget == 0 {
            return 0;
        }
        let _net_span = self.tracer.span("net_round");
        let task = self.scheduler.select(&self.infos, &self.states);
        self.tracer.event("task_pick", &[("task", task.into())]);
        let used = self.tuners[task].round(budget as usize) as u64;
        if used == 0 {
            return 0;
        }
        self.states[task].record_round(used, self.tuners[task].best_time);
        self.total_trials_used += used;
        let latency = self.network_latency();
        self.rounds.push(NetRound {
            task,
            trials_after: self.total_trials_used,
            latency,
        });
        if latency.is_finite() {
            let m = &self.tuners[0].measurer;
            self.trace.record(m.trials(), m.sim_seconds(), latency);
        }
        used
    }

    /// Tunes the whole network for `total_trials` measurements.
    pub fn tune(&mut self, total_trials: u64) {
        while self.total_trials_used < total_trials {
            let remaining = total_trials - self.total_trials_used;
            if self.round(remaining) == 0 {
                break;
            }
        }
    }

    /// Per-task trial allocations `{T^n}`.
    pub fn allocations(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.trials).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harl_tensor_ir::workload;
    use harl_tensor_sim::{Hardware, MeasureConfig};

    fn small_cfg() -> AnsorConfig {
        AnsorConfig {
            measure_per_round: 16,
            evo: EvoConfig {
                population: 64,
                generations: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn operator_tuning_improves_over_random() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(256, 256, 256);
        let mut t = AnsorTuner::new(g, &measurer, small_cfg());
        t.round(16);
        let first = t.best_time;
        t.tune(160);
        assert!(t.best_time <= first);
        assert!(t.best_schedule.is_some());
        assert!(t.trials_used >= 150, "used {}", t.trials_used);
        // evolved candidates all pass the analyzer (legal by construction)
        assert!(t.lint_stats.checked >= t.trials_used);
        assert_eq!(t.lint_stats.rejected, 0);
        // improvement should be real: best beats the first round by some margin
        assert!(
            t.best_time < first * 0.999,
            "no improvement: first {first}, final {}",
            t.best_time
        );
    }

    #[test]
    fn trace_is_monotone_and_counts_trials() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(128, 128, 128);
        let mut t = AnsorTuner::new(g, &measurer, small_cfg());
        t.tune(64);
        assert_eq!(t.trace.total_trials(), measurer.trials());
        let times: Vec<f64> = t.trace.points.iter().map(|p| p.best_time).collect();
        assert!(times.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn network_tuning_allocates_all_tasks() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let graphs = vec![
            workload::gemm(128, 128, 128),
            workload::gemm(256, 256, 256),
            workload::softmax(512, 128),
        ];
        let mut nt =
            AnsorNetworkTuner::new(graphs, &measurer, small_cfg(), GradientParams::default());
        nt.tune(32 * 6);
        let alloc = nt.allocations();
        assert!(
            alloc.iter().all(|&a| a > 0),
            "warm-up must touch all tasks: {alloc:?}"
        );
        assert_eq!(alloc.iter().sum::<u64>(), nt.total_trials_used);
        assert!(nt.network_latency().is_finite());
        assert!(!nt.rounds.is_empty());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = workload::gemm(128, 256, 128);
        let mut t = AnsorTuner::new(g, &measurer, small_cfg());
        t.tune(50);
        assert!(t.trials_used <= 50 || t.trials_used - 50 < 16);
        assert_eq!(t.trials_used, measurer.trials());
    }

    #[test]
    fn builder_validates_fields() {
        assert!(AnsorConfig::builder().build().is_ok());
        let err = AnsorConfig::builder().measure_per_round(0).build();
        assert_eq!(err.unwrap_err().field, "ansor.measure_per_round");
        let err = AnsorConfig::builder().elite_pool(0).build();
        assert_eq!(err.unwrap_err().field, "ansor.elite_pool");
        let err = AnsorConfig::builder().eval_cost(-1.0).build();
        assert_eq!(err.unwrap_err().field, "ansor.eval_cost");
        let err = AnsorConfig::builder().round_overhead(f64::NAN).build();
        assert_eq!(err.unwrap_err().field, "ansor.round_overhead");
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let g = workload::gemm(256, 256, 256);

        // uninterrupted reference run: 4 rounds of 16
        let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let mut t_ref = AnsorTuner::new(g.clone(), &m_ref, small_cfg());
        for _ in 0..2 {
            t_ref.round(16);
        }
        let tuner_ckpt = serde_json::to_string(&t_ref.checkpoint_state()).unwrap();
        let measurer_ckpt = serde_json::to_string(&m_ref.state()).unwrap();
        for _ in 0..2 {
            t_ref.round(16);
        }

        // "killed" run resumed from the serialized checkpoint
        let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        m2.restore_state(&serde_json::from_str(&measurer_ckpt).unwrap());
        let mut t2 = AnsorTuner::new(g, &m2, small_cfg());
        t2.restore_state(serde_json::from_str(&tuner_ckpt).unwrap());
        for _ in 0..2 {
            t2.round(16);
        }

        assert_eq!(t2.best_time.to_bits(), t_ref.best_time.to_bits());
        assert_eq!(t2.trials_used, t_ref.trials_used);
        assert_eq!(m2.trials(), m_ref.trials());
        assert_eq!(m2.sim_seconds().to_bits(), m_ref.sim_seconds().to_bits());
    }

    #[test]
    fn warm_start_pretrains_without_fresh_trials() {
        let g = workload::gemm(256, 256, 256);
        let key = g.similarity_key();

        // first run produces measurement records
        let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let mut cold = AnsorTuner::new(g.clone(), &m1, small_cfg());
        cold.tune(64);
        let records: Vec<MeasureRecord> = cold
            .elites
            .iter()
            .map(|(time, s)| MeasureRecord {
                workload: cold.graph.name.clone(),
                similarity_key: key,
                sketch_id: s.sketch_id,
                schedule: s.clone(),
                time: *time,
                flops_per_sec: cold.graph.flops() / *time,
            })
            .collect();

        // second run warm-starts from them: trained model, zero trials spent
        let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let mut warm = AnsorTuner::new(g, &m2, small_cfg());
        let used = warm.warm_start(&records);
        assert!(used > 0, "no records were usable");
        assert!(warm.cost_model.is_trained());
        assert_eq!(warm.trials_used, 0);
        assert_eq!(m2.trials(), 0);
        assert!(!warm.elites.is_empty());

        // mismatched similarity keys are ignored
        let mut bogus = records.clone();
        for r in &mut bogus {
            r.similarity_key ^= 1;
        }
        let m3 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g3 = workload::gemm(256, 256, 256);
        let mut t3 = AnsorTuner::new(g3, &m3, small_cfg());
        assert_eq!(t3.warm_start(&bogus), 0);
        assert!(!t3.cost_model.is_trained());
    }
}
