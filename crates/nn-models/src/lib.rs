//! # harl-nn-models
//!
//! The evaluation workloads of §6: the Table 6 tensor-operator suite
//! (GEMM-S/M/L, C1D, C2D, C3D, T2D with 4 parameter sets each) and the
//! end-to-end networks — BERT (10 distinct subgraphs, Table 4), ResNet-50
//! (24 distinct subgraphs) and MobileNet-V2 — expressed as weighted
//! subgraph lists `{(w_n, subgraph_n)}` for the task schedulers.

pub mod bert;
pub mod mobilenet;
pub mod operators;
pub mod resnet;

pub use bert::bert;
pub use mobilenet::mobilenet_v2;
pub use operators::{operator_suite, OperatorClass};
pub use resnet::resnet50;

/// The three end-to-end networks of §6.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Network {
    /// ResNet-50 (24 distinct subgraphs).
    ResNet50,
    /// MobileNet-V2 (inverted-residual blocks).
    MobileNetV2,
    /// BERT-base (10 distinct subgraphs, Table 4).
    Bert,
}

impl Network {
    /// The three networks of §6.3.
    pub const ALL: [Network; 3] = [Network::ResNet50, Network::MobileNetV2, Network::Bert];

    /// Display name used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Network::ResNet50 => "ResNet50",
            Network::MobileNetV2 => "MobileNet-V2",
            Network::Bert => "BERT",
        }
    }

    /// Builds the network's weighted subgraph list at a batch size.
    pub fn subgraphs(&self, batch: u32) -> Vec<harl_tensor_ir::Subgraph> {
        match self {
            Network::ResNet50 => resnet50(batch),
            Network::MobileNetV2 => mobilenet_v2(batch),
            Network::Bert => bert(batch),
        }
    }

    /// The measurement-trial budget the paper allocates per network (§6.3):
    /// 12,000 for BERT, 22,000 for ResNet-50, 16,000 for MobileNet-V2.
    pub fn paper_trials(&self) -> u64 {
        match self {
            Network::ResNet50 => 22_000,
            Network::MobileNetV2 => 16_000,
            Network::Bert => 12_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_build_and_validate() {
        for net in Network::ALL {
            for batch in [1, 16] {
                let subs = net.subgraphs(batch);
                assert!(!subs.is_empty());
                for g in &subs {
                    g.validate()
                        .unwrap_or_else(|e| panic!("{} {}: {e}", net.name(), g.name));
                }
            }
        }
    }

    #[test]
    fn paper_trial_budgets() {
        assert_eq!(Network::Bert.paper_trials(), 12_000);
        assert_eq!(Network::ResNet50.paper_trials(), 22_000);
        assert_eq!(Network::MobileNetV2.paper_trials(), 16_000);
    }
}
