//! The tensor-operator benchmark suite of §6.2 — exactly the shapes of
//! Table 6 (Appendix A.3), each class with 4 parameter sets, tested with
//! batch sizes 1 and 16.

use harl_tensor_ir::{workload, Subgraph};

/// Operator classes of the paper's Figure 5/6 x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorClass {
    /// Small GEMMs (Table 6 row 1).
    GemmS,
    /// Medium GEMMs.
    GemmM,
    /// Large GEMMs (the paper's hardest search spaces).
    GemmL,
    /// 1D convolutions.
    C1d,
    /// 2D convolutions.
    C2d,
    /// 3D convolutions.
    C3d,
    /// Transposed 2D convolutions.
    T2d,
}

impl OperatorClass {
    /// All seven classes in the paper's figure order.
    pub const ALL: [OperatorClass; 7] = [
        OperatorClass::GemmS,
        OperatorClass::GemmM,
        OperatorClass::GemmL,
        OperatorClass::C1d,
        OperatorClass::C2d,
        OperatorClass::C3d,
        OperatorClass::T2d,
    ];

    /// The class label used on the figures' x-axes.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorClass::GemmS => "GEMM-S",
            OperatorClass::GemmM => "GEMM-M",
            OperatorClass::GemmL => "GEMM-L",
            OperatorClass::C1d => "C1D",
            OperatorClass::C2d => "C2D",
            OperatorClass::C3d => "C3D",
            OperatorClass::T2d => "T2D",
        }
    }
}

/// GEMM shape table (M, K, N) — Table 6.
pub const GEMM_S: [(u32, u32, u32); 4] = [
    (128, 128, 128),
    (128, 256, 128),
    (256, 256, 256),
    (512, 32, 512),
];
/// GEMM-M shape table (M, K, N) — Table 6.
pub const GEMM_M: [(u32, u32, u32); 4] = [
    (512, 512, 512),
    (128, 1536, 512),
    (128, 512, 1536),
    (256, 1024, 512),
];
/// GEMM-L shape table (M, K, N) — Table 6.
pub const GEMM_L: [(u32, u32, u32); 4] = [
    (1024, 1024, 1024),
    (128, 3072, 768),
    (128, 768, 3072),
    (256, 1536, 768),
];

/// C1D shape table (L, Ci, Co, K, stride, padding) — Table 6.
pub const C1D: [(u32, u32, u32, u32, u32, u32); 4] = [
    (256, 64, 128, 3, 2, 1),
    (128, 128, 256, 1, 2, 0),
    (64, 256, 256, 5, 1, 2),
    (32, 512, 512, 3, 1, 1),
];

/// C2D shape table (H, W, Ci, Co, K, stride, padding) — Table 6.
pub const C2D: [(u32, u32, u32, u32, u32, u32, u32); 4] = [
    (224, 224, 3, 64, 7, 2, 3),
    (56, 56, 64, 64, 1, 1, 0),
    (14, 14, 256, 256, 3, 1, 1),
    (7, 7, 512, 512, 3, 1, 1),
];

/// C3D shape table (D, H, W, Ci, Co, K, stride, padding) — Table 6.
#[allow(clippy::type_complexity)]
pub const C3D: [(u32, u32, u32, u32, u32, u32, u32, u32); 4] = [
    (16, 224, 224, 3, 64, 7, 2, 3),
    (16, 56, 56, 64, 64, 1, 1, 0),
    (16, 14, 14, 256, 256, 3, 1, 1),
    (16, 7, 7, 512, 512, 3, 1, 1),
];

/// T2D shape table (H, W, Ci, Co, K, stride, padding) — Table 6.
pub const T2D: [(u32, u32, u32, u32, u32, u32, u32); 4] = [
    (4, 4, 512, 256, 4, 2, 1),
    (8, 8, 256, 128, 4, 2, 1),
    (16, 16, 128, 64, 4, 2, 1),
    (32, 32, 64, 3, 4, 2, 1),
];

/// Builds the 4 test subgraphs of one operator class at a batch size.
/// Batched GEMMs become `batch_gemm`; convolutions take batch directly,
/// matching how Ansor's benchmark suite parameterizes them.
pub fn operator_suite(class: OperatorClass, batch: u32) -> Vec<Subgraph> {
    match class {
        OperatorClass::GemmS => gemm_suite(&GEMM_S, batch),
        OperatorClass::GemmM => gemm_suite(&GEMM_M, batch),
        OperatorClass::GemmL => gemm_suite(&GEMM_L, batch),
        OperatorClass::C1d => C1D
            .iter()
            .map(|&(l, ci, co, k, s, p)| workload::conv1d(batch, l, ci, co, k, s, p))
            .collect(),
        OperatorClass::C2d => C2D
            .iter()
            .map(|&(h, w, ci, co, k, s, p)| workload::conv2d(batch, h, w, ci, co, k, s, p))
            .collect(),
        OperatorClass::C3d => C3D
            .iter()
            .map(|&(d, h, w, ci, co, k, s, p)| workload::conv3d(batch, d, h, w, ci, co, k, s, p))
            .collect(),
        OperatorClass::T2d => T2D
            .iter()
            .map(|&(h, w, ci, co, k, s, p)| {
                workload::conv2d_transposed(batch, h, w, ci, co, k, s, p)
            })
            .collect(),
    }
}

fn gemm_suite(shapes: &[(u32, u32, u32)], batch: u32) -> Vec<Subgraph> {
    shapes
        .iter()
        .map(|&(m, k, n)| {
            if batch <= 1 {
                workload::gemm(m, k, n)
            } else {
                workload::batch_gemm(batch, m, k, n)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_four_shapes() {
        for class in OperatorClass::ALL {
            for batch in [1, 16] {
                let suite = operator_suite(class, batch);
                assert_eq!(suite.len(), 4, "{} batch {batch}", class.name());
                for g in &suite {
                    g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
                }
            }
        }
    }

    #[test]
    fn batch16_scales_flops() {
        for class in OperatorClass::ALL {
            let b1 = operator_suite(class, 1);
            let b16 = operator_suite(class, 16);
            for (a, b) in b1.iter().zip(&b16) {
                let ratio = b.flops() / a.flops();
                assert!(
                    (ratio - 16.0).abs() < 0.01,
                    "{}: flops ratio {ratio}",
                    a.name
                );
            }
        }
    }

    #[test]
    fn gemm_l_is_biggest_gemm() {
        let s: f64 = operator_suite(OperatorClass::GemmS, 1)
            .iter()
            .map(|g| g.flops())
            .sum();
        let m: f64 = operator_suite(OperatorClass::GemmM, 1)
            .iter()
            .map(|g| g.flops())
            .sum();
        let l: f64 = operator_suite(OperatorClass::GemmL, 1)
            .iter()
            .map(|g| g.flops())
            .sum();
        assert!(s < m && m < l);
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        for class in OperatorClass::ALL {
            let names: HashSet<String> = operator_suite(class, 1)
                .iter()
                .map(|g| g.name.clone())
                .collect();
            assert_eq!(names.len(), 4);
        }
    }
}
