//! MobileNet-V2 workload: inverted-residual blocks (1×1 expand → 3×3
//! depthwise → 1×1 project) plus stem and head convolutions, with
//! appearance weights from the standard `(t, c, n, s)` table of Sandler et
//! al. 2018.

use harl_tensor_ir::{workload, Subgraph};

/// One distinct conv shape with its appearance count.
struct Conv {
    h: u32,
    ci: u32,
    co: u32,
    k: u32,
    stride: u32,
    depthwise: bool,
    weight: f64,
}

/// The standard MobileNet-V2 configuration: `(expansion t, channels c,
/// repeats n, first-stride s)` at 224×224 input.
const BLOCKS: [(u32, u32, u32, u32); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

fn block_convs() -> Vec<Conv> {
    let mut convs = Vec::new();
    // stem: 3×3 stride-2, 3→32 @224
    convs.push(Conv {
        h: 224,
        ci: 3,
        co: 32,
        k: 3,
        stride: 2,
        depthwise: false,
        weight: 1.0,
    });

    let mut c_in = 32u32;
    let mut h = 112u32;
    for &(t, c, n, s) in &BLOCKS {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let expanded = c_in * t;
            if t != 1 {
                // expand 1×1 at the input resolution
                convs.push(Conv {
                    h,
                    ci: c_in,
                    co: expanded,
                    k: 1,
                    stride: 1,
                    depthwise: false,
                    weight: 1.0,
                });
            }
            // depthwise 3×3 (possibly strided)
            convs.push(Conv {
                h,
                ci: expanded,
                co: expanded,
                k: 3,
                stride,
                depthwise: true,
                weight: 1.0,
            });
            let h_out = if stride == 2 { h / 2 } else { h };
            // project 1×1 at the output resolution
            convs.push(Conv {
                h: h_out,
                ci: expanded,
                co: c,
                k: 1,
                stride: 1,
                depthwise: false,
                weight: 1.0,
            });
            h = h_out;
            c_in = c;
        }
    }
    // head: 1×1 320→1280 @7
    convs.push(Conv {
        h: 7,
        ci: 320,
        co: 1280,
        k: 1,
        stride: 1,
        depthwise: false,
        weight: 1.0,
    });
    convs
}

/// Builds the distinct MobileNet-V2 subgraphs at a batch size, merging
/// repeated shapes into appearance weights.
pub fn mobilenet_v2(batch: u32) -> Vec<Subgraph> {
    let mut merged: Vec<Conv> = Vec::new();
    for c in block_convs() {
        if let Some(m) = merged.iter_mut().find(|m| {
            m.h == c.h
                && m.ci == c.ci
                && m.co == c.co
                && m.k == c.k
                && m.stride == c.stride
                && m.depthwise == c.depthwise
        }) {
            m.weight += c.weight;
        } else {
            merged.push(c);
        }
    }

    let mut out: Vec<Subgraph> = merged
        .into_iter()
        .map(|c| {
            let pad = if c.k == 3 { 1 } else { 0 };
            let mut g = if c.depthwise {
                workload::depthwise_conv2d(batch, c.h, c.h, c.ci, c.k, c.stride, pad)
            } else {
                workload::conv2d_bn_relu(batch, c.h, c.h, c.ci, c.co, c.k, c.stride, pad)
            };
            g.weight = c.weight;
            g
        })
        .collect();

    // classifier: [batch, 1280] × [1280, 1000]
    let mut fc = workload::gemm(batch.max(1), 1280, 1000);
    fc.name = "FC-1280x1000".into();
    fc.weight = 1.0;
    out.push(fc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subgraphs_validate_and_are_distinct() {
        let m = mobilenet_v2(1);
        assert!(
            m.len() >= 20,
            "MobileNet-V2 has many distinct blocks, got {}",
            m.len()
        );
        let names: std::collections::HashSet<&str> = m.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(
            names.len(),
            m.len(),
            "duplicate subgraph names after merging"
        );
        for g in &m {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
        }
    }

    #[test]
    fn total_weight_counts_52_convs() {
        // stem + head + 17 blocks × (2 or 3 convs) + FC:
        // blocks with t=1: 2 convs (1 block); t=6: 3 convs (16 blocks)
        // = 1 + 1 + 2 + 48 + 1 = 53 subgraph instances.
        let total: f64 = mobilenet_v2(1).iter().map(|g| g.weight).sum();
        assert_eq!(total as u32, 53);
    }

    #[test]
    fn flops_much_smaller_than_resnet() {
        // MobileNet-V2 ≈ 0.6 GFLOPs vs ResNet-50 ≈ 8 GFLOPs
        let m: f64 = mobilenet_v2(1).iter().map(|g| g.weight * g.flops()).sum();
        let r: f64 = crate::resnet::resnet50(1)
            .iter()
            .map(|g| g.weight * g.flops())
            .sum();
        assert!(m < r / 5.0, "mobilenet {m:.3e} vs resnet {r:.3e}");
    }

    #[test]
    fn contains_depthwise_convolutions() {
        let m = mobilenet_v2(1);
        assert!(m.iter().any(|g| g.name.starts_with("DW2D")));
    }
}
