//! ResNet-50 workload: 24 distinct subgraphs (conv+bn+relu blocks and the
//! classifier GEMM) with appearance weights — matching §4.1's "the number
//! of distinct subgraphs of ResNet-50 is 24".

use harl_tensor_ir::{workload, Subgraph};

/// Distinct convolution shapes of ResNet-50:
/// `(H, W, Ci, Co, K, stride, pad, weight)`.
#[allow(clippy::type_complexity)]
const CONVS: [(u32, u32, u32, u32, u32, u32, u32, f64); 23] = [
    // stem
    (224, 224, 3, 64, 7, 2, 3, 1.0),
    // stage 1 (56×56, bottleneck 64/256); the stride-1 projection
    // shortcut shares the 64→256 1×1 shape, hence its weight of 4
    (56, 56, 64, 64, 1, 1, 0, 1.0),
    (56, 56, 64, 64, 3, 1, 1, 3.0),
    (56, 56, 64, 256, 1, 1, 0, 4.0),
    (56, 56, 256, 64, 1, 1, 0, 2.0),
    // stage 2 (28×28, bottleneck 128/512)
    (56, 56, 256, 128, 1, 1, 0, 1.0),
    (56, 56, 128, 128, 3, 2, 1, 1.0),
    (28, 28, 128, 512, 1, 1, 0, 4.0),
    (28, 28, 512, 128, 1, 1, 0, 3.0),
    (28, 28, 128, 128, 3, 1, 1, 3.0),
    (56, 56, 256, 512, 1, 2, 0, 1.0), // projection shortcut
    // stage 3 (14×14, bottleneck 256/1024)
    (28, 28, 512, 256, 1, 1, 0, 1.0),
    (28, 28, 256, 256, 3, 2, 1, 1.0),
    (14, 14, 256, 1024, 1, 1, 0, 6.0),
    (14, 14, 1024, 256, 1, 1, 0, 5.0),
    (14, 14, 256, 256, 3, 1, 1, 5.0),
    (28, 28, 512, 1024, 1, 2, 0, 1.0), // projection shortcut
    // stage 4 (7×7, bottleneck 512/2048)
    (14, 14, 1024, 512, 1, 1, 0, 1.0),
    (14, 14, 512, 512, 3, 2, 1, 1.0),
    (7, 7, 512, 2048, 1, 1, 0, 3.0),
    (7, 7, 2048, 512, 1, 1, 0, 2.0),
    (7, 7, 512, 512, 3, 1, 1, 2.0),
    (14, 14, 1024, 2048, 1, 2, 0, 1.0), // projection shortcut
];

/// Builds the 24 distinct ResNet-50 subgraphs at a batch size
/// (23 conv+bn+relu blocks + the final classifier GEMM).
pub fn resnet50(batch: u32) -> Vec<Subgraph> {
    let mut out: Vec<Subgraph> = CONVS
        .iter()
        .map(|&(h, w, ci, co, k, s, p, weight)| {
            let mut g = workload::conv2d_bn_relu(batch, h, w, ci, co, k, s, p);
            g.weight = weight;
            g
        })
        .collect();
    // classifier: [batch, 2048] × [2048, 1000]
    let mut fc = workload::gemm(batch.max(1), 2048, 1000);
    fc.name = "FC-2048x1000".into();
    fc.weight = 1.0;
    out.push(fc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_has_24_distinct_subgraphs() {
        // §4.1: "that of ResNet-50 is 24"
        let r = resnet50(1);
        assert_eq!(r.len(), 24);
        let names: std::collections::HashSet<&str> = r.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names.len(), 24);
        for g in &r {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
        }
    }

    #[test]
    fn block_weights_count_50_layers() {
        // 1 stem + 16 bottleneck blocks × 3 convs + 4 shortcuts + 1 FC;
        // the conv weights must sum to 1 + 48 + 4 = 53.
        let total: f64 = resnet50(1)
            .iter()
            .filter(|g| g.name.starts_with("C2D"))
            .map(|g| g.weight)
            .sum();
        assert_eq!(total as u32, 53);
    }

    #[test]
    fn weighted_flops_in_resnet50_range() {
        // ResNet-50 forward pass ≈ 3.8–4.1 GFLOPs (multiply–add counted
        // as 2 FLOPs, batch 1).
        let r = resnet50(1);
        let total: f64 = r.iter().map(|g| g.weight * g.flops()).sum();
        assert!(
            (6e9..10e9).contains(&total),
            "total weighted flops {total:.3e} (conv+bn+relu counts epilogues too)"
        );
    }
}
