//! BERT-base workload: the 10 distinct subgraphs of Table 4 with their
//! appearance weights `w_n`.
//!
//! Configuration: hidden 768, 12 heads (64 per head), FFN 3072, sequence
//! length 128, 12 encoder layers, plus the pooler. Weight = number of times
//! the subgraph appears across the network (`f(S) ≈ Σ w_n g_n`, §2.2).

use harl_tensor_ir::{workload, Subgraph};

/// BERT-base structural constants.
/// Hidden (model) dimension.
pub const HIDDEN: u32 = 768;
/// Attention heads.
pub const HEADS: u32 = 12;
/// Per-head dimension.
pub const HEAD_DIM: u32 = 64;
/// Feed-forward inner dimension.
pub const FFN: u32 = 3072;
/// Sequence length used in the evaluation.
pub const SEQ: u32 = 128;
/// Encoder layers (= the appearance weight of per-layer subgraphs).
pub const LAYERS: f64 = 12.0;

/// Builds the 10 distinct BERT subgraphs at a batch size. Names match the
/// rows of Table 4.
pub fn bert(batch: u32) -> Vec<Subgraph> {
    let rows = batch * SEQ; // token dimension of the fused-batch GEMMs
    let mut out = Vec::with_capacity(10);

    // GEMM-I: fused QKV projection [rows, 768] × [768, 2304]
    let mut g = workload::gemm(rows, HIDDEN, 3 * HIDDEN);
    g.name = "GEMM-I".into();
    g.weight = LAYERS;
    out.push(g);

    // GEMM-II: attention output projection [rows, 768] × [768, 768]
    let mut g = workload::gemm(rows, HIDDEN, HIDDEN);
    g.name = "GEMM-II".into();
    g.weight = LAYERS;
    out.push(g);

    // GEMM-III: FFN up projection [rows, 768] × [768, 3072]
    let mut g = workload::gemm(rows, HIDDEN, FFN);
    g.name = "GEMM-III".into();
    g.weight = LAYERS;
    out.push(g);

    // GEMM-IV: FFN down projection [rows, 3072] × [3072, 768]
    let mut g = workload::gemm(rows, FFN, HIDDEN);
    g.name = "GEMM-IV".into();
    g.weight = LAYERS;
    out.push(g);

    // Softmax over attention scores: (batch·heads·seq) rows of length seq
    let mut g = workload::softmax(batch * HEADS * SEQ, SEQ);
    g.name = "Softmax".into();
    g.weight = LAYERS;
    out.push(g);

    // Batch_GEMM-I: Q·Kᵀ — batch·heads batched [seq, 64] × [64, seq]
    let mut g = workload::batch_gemm(batch * HEADS, SEQ, HEAD_DIM, SEQ);
    g.name = "Batch_GEMM-I".into();
    g.weight = LAYERS;
    out.push(g);

    // Batch_GEMM-II: scores·V — batched [seq, seq] × [seq, 64]
    let mut g = workload::batch_gemm(batch * HEADS, SEQ, SEQ, HEAD_DIM);
    g.name = "Batch_GEMM-II".into();
    g.weight = LAYERS;
    out.push(g);

    // Element-wise-I: residual add + layer-norm after attention
    let mut g = workload::elementwise(rows, HIDDEN, 6.0);
    g.name = "Element-wise-I".into();
    g.weight = LAYERS;
    out.push(g);

    // Element-wise-II: GELU inside the FFN (wider tensor)
    let mut g = workload::elementwise(rows, FFN, 8.0);
    g.name = "Element-wise-II".into();
    g.weight = LAYERS;
    out.push(g);

    // GEMM+Tanh: the pooler head (appears once)
    let mut g = workload::gemm_epilogue(batch, HIDDEN, HIDDEN, "tanh", 8.0);
    g.name = "GEMM+Tanh".into();
    g.weight = 1.0;
    out.push(g);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_has_ten_distinct_subgraphs() {
        // §4.1: "in a BERT model, the number of distinct subgraphs is 10"
        let b = bert(1);
        assert_eq!(b.len(), 10);
        let names: std::collections::HashSet<&str> = b.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names.len(), 10);
        for g in &b {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
        }
    }

    #[test]
    fn gemms_dominate_flops() {
        // Table 4: the four GEMMs contribute ~82% of execution time; in
        // FLOP terms they dominate even more.
        let b = bert(1);
        let total: f64 = b.iter().map(|g| g.weight * g.flops()).sum();
        let gemms: f64 = b
            .iter()
            .filter(|g| g.name.starts_with("GEMM-"))
            .map(|g| g.weight * g.flops())
            .sum();
        assert!(gemms / total > 0.8, "GEMM share {}", gemms / total);
    }

    #[test]
    fn batch_gemm_flops_are_small_fraction_of_gemm() {
        // §6.3: batch GEMMs have magnitudes-smaller FLOP counts than the
        // projection GEMMs.
        let b = bert(1);
        let gemm1 = b.iter().find(|g| g.name == "GEMM-I").unwrap().flops();
        let bg = b.iter().find(|g| g.name == "Batch_GEMM-I").unwrap().flops();
        assert!(bg < gemm1 / 5.0);
    }

    #[test]
    fn batch_scales_everything() {
        let b1 = bert(1);
        let b16 = bert(16);
        for (a, b) in b1.iter().zip(&b16) {
            assert!(b.flops() > 10.0 * a.flops(), "{} did not scale", a.name);
        }
    }
}
