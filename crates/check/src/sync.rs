//! Instrumented `std::sync` wrappers.
//!
//! Without `--cfg harl_check` every type here is a `#[repr(transparent)]`
//! newtype over its `std::sync` counterpart with `#[inline]` forwarding
//! methods — release builds pay nothing (the `passthrough` tests pin the
//! layout). With `--cfg harl_check` and `HARL_CHECK=1` in the
//! environment, acquisitions feed a per-thread held-lock stack and a
//! global *class-level* acquisition-order graph ("class" = the static
//! name given at construction, e.g. `"serve.queue"`), and the wrappers
//! fail fast on C001/C002/C004 or record C003 warnings (see the crate
//! docs for the code meanings).
//!
//! Atomics additionally declare a [`AtomicRole`]: a `Counter` is a pure
//! statistic where `Ordering::Relaxed` is fine; a `Flag` publishes a
//! decision other threads act on (shutdown, cancellation), where a
//! `Relaxed` access is flagged as C004.

/// What an atomic is used for — determines which orderings the checked
/// build accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// A statistic or monotonically advancing cursor; any ordering is
    /// acceptable, including `Relaxed`.
    Counter,
    /// A flag other threads make control-flow decisions on (shutdown,
    /// cancel, "results ready"). `Relaxed` loads/stores are reported as
    /// C004 under checking.
    Flag,
}

// ---------------------------------------------------------------------------
// Passthrough build: transparent newtypes, zero overhead.
// ---------------------------------------------------------------------------

#[cfg(not(harl_check))]
mod passthrough {
    use super::AtomicRole;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Condvar, LockResult, Mutex, MutexGuard};

    /// `std::sync::Mutex` with a lock-class name (discarded in this
    /// build).
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct CMutex<T>(Mutex<T>);

    impl<T> CMutex<T> {
        /// Wraps `value`; `_name` is the lock class used by the checked
        /// build.
        #[inline]
        pub fn new(_name: &'static str, value: T) -> Self {
            CMutex(Mutex::new(value))
        }

        #[inline]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            self.0.lock()
        }

        #[inline]
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }

        /// The lock-class name (only retained by the checked build).
        #[inline]
        pub fn name(&self) -> &'static str {
            "<unchecked>"
        }

        /// Checked builds panic (C004) when the current thread does not
        /// hold this lock; a no-op here.
        #[inline]
        pub fn assert_held(&self) {}
    }

    /// `std::sync::Condvar` usable with [`CMutex`] guards.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct CCondvar(Condvar);

    impl CCondvar {
        #[inline]
        pub fn new() -> Self {
            CCondvar(Condvar::new())
        }

        #[inline]
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            self.0.wait(guard)
        }

        #[inline]
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        #[inline]
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    macro_rules! passthrough_atomic {
        ($name:ident, $inner:ident, $val:ty) => {
            /// Role-declared atomic; plain `std::sync::atomic` in this
            /// build.
            #[repr(transparent)]
            #[derive(Debug, Default)]
            pub struct $name($inner);

            impl $name {
                #[inline]
                pub fn new(value: $val, _name: &'static str, _role: AtomicRole) -> Self {
                    $name($inner::new(value))
                }

                #[inline]
                pub fn load(&self, order: Ordering) -> $val {
                    self.0.load(order)
                }

                #[inline]
                pub fn store(&self, value: $val, order: Ordering) {
                    self.0.store(value, order);
                }
            }
        };
    }

    passthrough_atomic!(CAtomicBool, AtomicBool, bool);
    passthrough_atomic!(CAtomicU64, AtomicU64, u64);
    passthrough_atomic!(CAtomicUsize, AtomicUsize, usize);

    impl CAtomicU64 {
        #[inline]
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            self.0.fetch_add(value, order)
        }
    }

    impl CAtomicUsize {
        #[inline]
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            self.0.fetch_add(value, order)
        }
    }
}

#[cfg(not(harl_check))]
pub use passthrough::{CAtomicBool, CAtomicU64, CAtomicUsize, CCondvar, CMutex};

// ---------------------------------------------------------------------------
// Checked build: lock-graph recording, fail-fast diagnostics.
// ---------------------------------------------------------------------------

#[cfg(harl_check)]
mod checked {
    use super::AtomicRole;
    use crate::active::{checking_enabled, fail, record_warning};
    use crate::{DEFAULT_HOLD_MS, HOLD_MS_ENV};
    use harl_verify::{Component, Diagnostic, LintCode};
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::{Duration, Instant};

    fn diag(code: LintCode, message: String) -> Diagnostic {
        Diagnostic::new(code, Component::SyncPrimitive, message)
    }

    fn hold_threshold() -> Duration {
        static MS: OnceLock<u64> = OnceLock::new();
        Duration::from_millis(*MS.get_or_init(|| {
            std::env::var(HOLD_MS_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_HOLD_MS)
        }))
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    struct Held {
        id: u64,
        class: &'static str,
        since: Instant,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Class-level acquisition graph: an edge `a -> b` means some thread
    /// acquired a lock of class `b` while holding one of class `a`.
    fn graph() -> &'static Mutex<HashMap<&'static str, HashSet<&'static str>>> {
        static GRAPH: OnceLock<Mutex<HashMap<&'static str, HashSet<&'static str>>>> =
            OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn reaches(
        g: &HashMap<&'static str, HashSet<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen: HashSet<&'static str> = HashSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = g.get(n) {
                for &m in next {
                    if m == to {
                        return true;
                    }
                    stack.push(m);
                }
            }
        }
        false
    }

    /// Records an acquisition of `(id, class)` on the current thread.
    /// Returns `true` when the acquisition is tracked (checking on).
    /// Must run *before* the real `Mutex::lock` so a self-deadlock
    /// panics instead of hanging.
    fn on_acquire(id: u64, class: &'static str) -> bool {
        if !checking_enabled() {
            return false;
        }
        // Same-instance or same-class nesting → C002.
        let nested: Option<Diagnostic> = HELD.with(|h| {
            let h = h.borrow();
            for held in h.iter() {
                if held.id == id {
                    return Some(diag(
                        LintCode::DoubleLock,
                        format!(
                            "thread re-locked mutex `{class}` (id {id}) it already \
                             holds; std::sync::Mutex is not reentrant, this deadlocks"
                        ),
                    ));
                }
                if held.class == class {
                    return Some(diag(
                        LintCode::DoubleLock,
                        format!(
                            "thread acquired a second lock of class `{class}` while \
                             holding one; same-class nesting has no defined order"
                        ),
                    ));
                }
            }
            None
        });
        if let Some(d) = nested {
            fail(d);
        }
        // Order inversion: acquiring `class` while holding `h` creates
        // the edge h -> class; if class already reaches h, that's a
        // cycle → C001.
        let inversion: Option<Diagnostic> = {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            let held_classes: Vec<&'static str> =
                HELD.with(|h| h.borrow().iter().map(|e| e.class).collect());
            let mut found = None;
            for hc in &held_classes {
                if reaches(&g, class, hc) {
                    found = Some(diag(
                        LintCode::LockOrderInversion,
                        format!(
                            "acquiring `{class}` while holding `{hc}` inverts the \
                             established order `{class}` -> `{hc}`; two threads taking \
                             the classes in opposite orders can deadlock"
                        ),
                    ));
                    break;
                }
            }
            if found.is_none() {
                for hc in held_classes {
                    g.entry(hc).or_default().insert(class);
                }
            }
            found
        };
        if let Some(d) = inversion {
            fail(d);
        }
        HELD.with(|h| {
            h.borrow_mut().push(Held {
                id,
                class,
                since: Instant::now(),
            })
        });
        true
    }

    fn on_release(id: u64) {
        let released = HELD.with(|h| {
            let mut h = h.borrow_mut();
            h.iter().rposition(|e| e.id == id).map(|pos| h.remove(pos))
        });
        if let Some(e) = released {
            let held_for = e.since.elapsed();
            if held_for > hold_threshold() {
                record_warning(diag(
                    LintCode::LongLockHold,
                    format!(
                        "lock `{}` held for {:?} (threshold {:?}); long holds \
                         serialize the pipeline — move slow work (measurement, I/O) \
                         outside the critical section",
                        e.class,
                        held_for,
                        hold_threshold()
                    ),
                ));
            }
        }
    }

    fn held_classes() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().iter().map(|e| e.class).collect())
    }

    pub(crate) fn assert_lock_free_impl(context: &str) {
        if !checking_enabled() {
            return;
        }
        let held = held_classes();
        if !held.is_empty() {
            record_warning(diag(
                LintCode::LongLockHold,
                format!(
                    "blocking region `{context}` entered while holding lock(s) \
                     [{}]; a slow measurement here stalls every thread contending \
                     on them",
                    held.join(", ")
                ),
            ));
        }
    }

    /// `std::sync::Mutex` that records acquisitions in the lock graph.
    #[derive(Debug)]
    pub struct CMutex<T> {
        id: u64,
        name: &'static str,
        inner: Mutex<T>,
    }

    impl<T> CMutex<T> {
        pub fn new(name: &'static str, value: T) -> Self {
            CMutex {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                name,
                inner: Mutex::new(value),
            }
        }

        pub fn lock(&self) -> LockResult<CMutexGuard<'_, T>> {
            // Before the real lock: a self-deadlock must panic, not hang.
            let tracked = on_acquire(self.id, self.name);
            match self.inner.lock() {
                Ok(g) => Ok(CMutexGuard {
                    id: self.id,
                    class: self.name,
                    inner: Some(g),
                    tracked,
                }),
                Err(e) => Err(PoisonError::new(CMutexGuard {
                    id: self.id,
                    class: self.name,
                    inner: Some(e.into_inner()),
                    tracked,
                })),
            }
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }

        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Panics (C004) when checking is on and the current thread does
        /// not hold this mutex — guards data documented as
        /// "protected by" it against unprotected access paths.
        pub fn assert_held(&self) {
            if !checking_enabled() {
                return;
            }
            let held = HELD.with(|h| h.borrow().iter().any(|e| e.id == self.id));
            if !held {
                fail(diag(
                    LintCode::UnorderedSharedWrite,
                    format!(
                        "data protected by `{}` accessed without holding it \
                         (assert_held failed)",
                        self.name
                    ),
                ));
            }
        }
    }

    impl<T: Default> Default for CMutex<T> {
        fn default() -> Self {
            CMutex::new("<default>", T::default())
        }
    }

    /// Guard for [`CMutex`]; pops the held-lock stack (and checks the
    /// hold duration) on drop.
    #[derive(Debug)]
    pub struct CMutexGuard<'a, T> {
        id: u64,
        class: &'static str,
        inner: Option<MutexGuard<'a, T>>,
        tracked: bool,
    }

    impl<T> Deref for CMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> DerefMut for CMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T> Drop for CMutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.tracked {
                on_release(self.id);
            }
        }
    }

    /// `std::sync::Condvar` aware of [`CMutexGuard`] tracking: the wait
    /// releases the guard's slot in the held stack and re-records it on
    /// wake, and waiting while holding *other* locks is a C003 warning
    /// (those locks stay held for the whole sleep).
    #[derive(Debug, Default)]
    pub struct CCondvar {
        inner: Condvar,
    }

    impl CCondvar {
        pub fn new() -> Self {
            CCondvar {
                inner: Condvar::new(),
            }
        }

        pub fn wait<'a, T>(&self, mut guard: CMutexGuard<'a, T>) -> LockResult<CMutexGuard<'a, T>> {
            let id = guard.id;
            let class = guard.class;
            if guard.tracked {
                let others: Vec<&'static str> =
                    held_classes().into_iter().filter(|c| *c != class).collect();
                if !others.is_empty() {
                    record_warning(diag(
                        LintCode::LongLockHold,
                        format!(
                            "condvar wait on `{class}` while still holding \
                             [{}]; those locks stay blocked for the whole sleep",
                            others.join(", ")
                        ),
                    ));
                }
                on_release(id);
                guard.tracked = false;
            }
            let inner = guard.inner.take().expect("guard taken");
            drop(guard);
            let rewrap = |g: MutexGuard<'a, T>| CMutexGuard {
                id,
                class,
                inner: Some(g),
                tracked: on_acquire(id, class),
            };
            match self.inner.wait(inner) {
                Ok(g) => Ok(rewrap(g)),
                Err(e) => Err(PoisonError::new(rewrap(e.into_inner()))),
            }
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    fn check_flag_ordering(name: &'static str, role: AtomicRole, order: Ordering, op: &str) {
        if role == AtomicRole::Flag && order == Ordering::Relaxed && checking_enabled() {
            fail(diag(
                LintCode::UnorderedSharedWrite,
                format!(
                    "Relaxed {op} on flag atomic `{name}`; a flag publishes a \
                     decision other threads act on and needs at least \
                     Acquire/Release ordering"
                ),
            ));
        }
    }

    macro_rules! checked_atomic {
        ($name:ident, $inner:ident, $val:ty) => {
            /// Role-declared atomic; checks orderings against the role.
            #[derive(Debug)]
            pub struct $name {
                inner: $inner,
                name: &'static str,
                role: AtomicRole,
            }

            impl $name {
                pub fn new(value: $val, name: &'static str, role: AtomicRole) -> Self {
                    $name {
                        inner: $inner::new(value),
                        name,
                        role,
                    }
                }

                pub fn load(&self, order: Ordering) -> $val {
                    check_flag_ordering(self.name, self.role, order, "load");
                    self.inner.load(order)
                }

                pub fn store(&self, value: $val, order: Ordering) {
                    check_flag_ordering(self.name, self.role, order, "store");
                    self.inner.store(value, order);
                }
            }
        };
    }

    checked_atomic!(CAtomicBool, AtomicBool, bool);
    checked_atomic!(CAtomicU64, AtomicU64, u64);
    checked_atomic!(CAtomicUsize, AtomicUsize, usize);

    impl CAtomicU64 {
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            check_flag_ordering(self.name, self.role, order, "fetch_add");
            self.inner.fetch_add(value, order)
        }
    }

    impl CAtomicUsize {
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            check_flag_ordering(self.name, self.role, order, "fetch_add");
            self.inner.fetch_add(value, order)
        }
    }
}

#[cfg(harl_check)]
pub use checked::{CAtomicBool, CAtomicU64, CAtomicUsize, CCondvar, CMutex, CMutexGuard};

#[cfg(harl_check)]
pub(crate) use checked::assert_lock_free_impl;

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(all(test, not(harl_check)))]
mod passthrough_tests {
    use super::*;
    use std::mem::size_of;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    /// The whole point of the passthrough build: the wrappers add no
    /// fields, so every release-mode access compiles to the plain
    /// std::sync operation.
    #[test]
    fn wrappers_are_layout_identical_to_std() {
        assert_eq!(size_of::<CMutex<u64>>(), size_of::<Mutex<u64>>());
        assert_eq!(
            size_of::<CMutex<Vec<String>>>(),
            size_of::<Mutex<Vec<String>>>()
        );
        assert_eq!(size_of::<CCondvar>(), size_of::<Condvar>());
        assert_eq!(size_of::<CAtomicBool>(), size_of::<AtomicBool>());
        assert_eq!(size_of::<CAtomicU64>(), size_of::<AtomicU64>());
        assert_eq!(size_of::<CAtomicUsize>(), size_of::<AtomicUsize>());
    }

    #[test]
    fn passthrough_mutex_and_atomics_behave_like_std() {
        let m = CMutex::new("test.plain", 1u64);
        *m.lock().expect("lock") += 41;
        m.assert_held(); // no-op here
        assert_eq!(m.into_inner().expect("into_inner"), 42);
        assert_eq!(CMutex::new("test.plain", 7u8).name(), "<unchecked>");

        let b = CAtomicBool::new(false, "test.flag", AtomicRole::Flag);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));
        let c = CAtomicU64::new(5, "test.ctr", AtomicRole::Counter);
        assert_eq!(c.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(c.load(Ordering::Relaxed), 8);
        let u = CAtomicUsize::new(0, "test.cursor", AtomicRole::Counter);
        u.fetch_add(2, Ordering::Relaxed);
        assert_eq!(u.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn checking_is_compiled_out() {
        assert!(!crate::checking_enabled());
        crate::force_enable();
        assert!(!crate::checking_enabled());
        crate::assert_lock_free("anywhere");
        assert!(crate::take_warnings().is_empty());
    }
}

#[cfg(all(test, harl_check))]
mod checked_tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    /// The warnings sink is global and `take_warnings` drains it, so the
    /// tests that assert on recorded warnings must not run concurrently
    /// with each other.
    static WARNINGS_SINK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn panic_message(r: std::thread::Result<()>) -> String {
        let payload = r.expect_err("expected a harl-check panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn double_lock_same_instance_is_c002() {
        crate::force_enable();
        let m = CMutex::new("t.double", 0u32);
        let _g = m.lock().expect("first lock");
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _g2 = m.lock();
        })));
        assert!(msg.contains("C002"), "got: {msg}");
    }

    #[test]
    fn same_class_nesting_is_c002() {
        crate::force_enable();
        let a = CMutex::new("t.sameclass", 0u32);
        let b = CMutex::new("t.sameclass", 0u32);
        let _g = a.lock().expect("lock a");
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _g2 = b.lock();
        })));
        assert!(msg.contains("C002"), "got: {msg}");
    }

    #[test]
    fn abba_inversion_is_c001() {
        crate::force_enable();
        let a = CMutex::new("t.inv_a", ());
        let b = CMutex::new("t.inv_b", ());
        {
            let _ga = a.lock().expect("a");
            let _gb = b.lock().expect("b"); // establishes t.inv_a -> t.inv_b
        }
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock().expect("b");
            let _ga = a.lock(); // inverts the order
        })));
        assert!(msg.contains("C001"), "got: {msg}");
    }

    #[test]
    fn relaxed_flag_access_is_c004() {
        crate::force_enable();
        let f = CAtomicBool::new(false, "t.flag_relaxed", AtomicRole::Flag);
        f.store(true, Ordering::SeqCst); // fine
        assert!(f.load(Ordering::Acquire));
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            f.store(false, Ordering::Relaxed);
        })));
        assert!(msg.contains("C004"), "got: {msg}");
        // Counters may be Relaxed.
        let c = CAtomicUsize::new(0, "t.ctr_relaxed", AtomicRole::Counter);
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn assert_held_outside_lock_is_c004() {
        crate::force_enable();
        let m = CMutex::new("t.assert_held", 0u32);
        {
            let _g = m.lock().expect("lock");
            m.assert_held(); // fine while held
        }
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            m.assert_held();
        })));
        assert!(msg.contains("C004"), "got: {msg}");
    }

    #[test]
    fn long_hold_records_c003_warning() {
        crate::force_enable();
        let _sink = WARNINGS_SINK.lock().unwrap_or_else(|e| e.into_inner());
        let m = CMutex::new("t.long_hold", ());
        {
            let _g = m.lock().expect("lock");
            std::thread::sleep(Duration::from_millis(crate::DEFAULT_HOLD_MS + 50));
        }
        let warned = crate::take_warnings()
            .iter()
            .any(|d| d.code.code() == "C003" && d.message.contains("t.long_hold"));
        assert!(warned, "expected a C003 long-hold warning");
    }

    #[test]
    fn assert_lock_free_under_lock_records_c003() {
        crate::force_enable();
        let _sink = WARNINGS_SINK.lock().unwrap_or_else(|e| e.into_inner());
        let m = CMutex::new("t.lock_free_zone", ());
        {
            let _g = m.lock().expect("lock");
            crate::assert_lock_free("measurer call");
        }
        let warned = crate::take_warnings().iter().any(|d| {
            d.code.code() == "C003"
                && d.message.contains("measurer call")
                && d.message.contains("t.lock_free_zone")
        });
        assert!(warned, "expected a C003 blocking-region warning");
    }

    #[test]
    fn condvar_wait_holding_another_lock_records_c003() {
        crate::force_enable();
        let _sink = WARNINGS_SINK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = CMutex::new("t.wait_outer", ());
        let pair = Arc::new((CMutex::new("t.wait_inner", false), CCondvar::new()));
        {
            let _outer = outer.lock().expect("outer");
            let mut g = pair.0.lock().expect("inner");
            // Spawned while we hold the inner lock: the notifier can only
            // set the flag after our wait() has released it, so the wait
            // genuinely happens.
            let notifier = {
                let pair = Arc::clone(&pair);
                std::thread::spawn(move || {
                    *pair.0.lock().expect("inner") = true;
                    pair.1.notify_all();
                })
            };
            while !*g {
                g = pair.1.wait(g).expect("wait");
            }
            drop(g);
            notifier.join().expect("notifier");
        }
        let warned = crate::take_warnings().iter().any(|d| {
            d.code.code() == "C003"
                && d.message.contains("t.wait_inner")
                && d.message.contains("t.wait_outer")
        });
        assert!(warned, "expected a C003 wait-while-holding warning");
    }
}
