//! A small explicit-state model checker (loom-style, but dependency-free
//! and sequentially consistent).
//!
//! A [`Model`] is a deterministic state machine over `N` logical threads:
//! [`Checker::check`] explores every interleaving of their atomic steps
//! by depth-first search, deduplicating states by hash fingerprint. After
//! every transition the model's [`Model::invariant`] must hold; when all
//! threads are done, [`Model::finale`] checks completion properties
//! (e.g. "everything pushed was popped exactly once"). A state where no
//! thread can step but some are still blocked is reported as a deadlock.
//!
//! Every violation carries the exact thread **schedule** (the sequence of
//! thread ids stepped from the initial state) that reproduces it —
//! [`replay`] re-runs a schedule deterministically for debugging.
//!
//! The models stay small (a handful of threads, bounded data), so the
//! checker is *exhaustive* within its bounds: a pass is a proof over the
//! model, not a statistical argument like a stress test. What the model
//! abstracts away (the real memory model, the real filesystem) is what a
//! pass does **not** cover — see DESIGN.md §11 for the proves-vs-tests
//! boundary.

use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Outcome of asking a model thread to take its next atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed a transition; the state changed (or at least
    /// may have).
    Ran,
    /// The thread cannot currently step (waiting on a lock/condvar); it
    /// may become runnable after another thread runs.
    Blocked,
    /// The thread has terminated; it will never step again.
    Done,
}

/// A finite-state concurrency model: `N` logical threads stepping over
/// shared state.
///
/// Requirements for the search to be sound:
/// - `step(tid)` must be **deterministic** given the current state;
/// - a `Blocked`/`Done` reply must leave the state unchanged;
/// - `Hash` must cover *all* state that influences future behaviour
///   (two states hashing equal are treated as identical).
pub trait Model: Clone + Hash {
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Number of logical threads (thread ids are `0..thread_count()`).
    fn thread_count(&self) -> usize;
    /// Advance thread `tid` by one atomic step.
    fn step(&mut self, tid: usize) -> Step;
    /// Safety property, checked after every transition.
    fn invariant(&self) -> Result<(), String>;
    /// Completion property, checked when every thread is `Done`.
    fn finale(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A counterexample: the schedule that led to the failure.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Thread ids stepped, in order, from the initial state.
    pub schedule: Vec<usize>,
    /// What went wrong (invariant/finale message, or a deadlock note).
    pub message: String,
}

/// Result of exploring one model.
#[derive(Debug, Clone)]
pub struct Report {
    /// The model's display name.
    pub model: &'static str,
    /// Distinct states expanded.
    pub states_explored: usize,
    /// Successor states skipped because an equal-hash state was already
    /// seen.
    pub deduped: usize,
    /// Deepest schedule reached.
    pub max_depth_seen: usize,
    /// True when the search finished without hitting a bound: the state
    /// space was covered exhaustively.
    pub exhausted: bool,
    /// First violation found, if any (the search stops at the first).
    pub violation: Option<Violation>,
}

impl Report {
    /// Exhaustive and violation-free.
    pub fn passed(&self) -> bool {
        self.exhausted && self.violation.is_none()
    }
}

/// Bounded DFS over a model's interleavings.
#[derive(Debug, Clone, Copy)]
pub struct Checker {
    /// Longest schedule explored before the branch is abandoned (and the
    /// report marked non-exhaustive).
    pub max_depth: usize,
    /// Most distinct states expanded before the search is cut off.
    pub max_states: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_depth: 128,
            max_states: 200_000,
        }
    }
}

fn fingerprint<M: Hash>(m: &M) -> u64 {
    let mut h = DefaultHasher::new();
    m.hash(&mut h);
    h.finish()
}

impl Checker {
    /// Explores every interleaving of `model` within the bounds, stopping
    /// at the first violation.
    pub fn check<M: Model>(&self, model: M) -> Report {
        let mut report = Report {
            model: model.name(),
            states_explored: 0,
            deduped: 0,
            max_depth_seen: 0,
            exhausted: true,
            violation: None,
        };
        let threads = model.thread_count();
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(fingerprint(&model));
        let mut stack: Vec<(M, Vec<usize>)> = vec![(model, Vec::new())];

        while let Some((state, path)) = stack.pop() {
            if report.states_explored >= self.max_states {
                report.exhausted = false;
                break;
            }
            report.states_explored += 1;
            report.max_depth_seen = report.max_depth_seen.max(path.len());
            if path.len() >= self.max_depth {
                report.exhausted = false;
                continue;
            }

            let mut any_ran = false;
            let mut any_blocked = false;
            let mut all_done = true;
            for tid in 0..threads {
                let mut next = state.clone();
                match next.step(tid) {
                    Step::Done => continue,
                    Step::Blocked => {
                        any_blocked = true;
                        all_done = false;
                        continue;
                    }
                    Step::Ran => {
                        any_ran = true;
                        all_done = false;
                    }
                }
                let mut next_path = path.clone();
                next_path.push(tid);
                if let Err(msg) = next.invariant() {
                    report.violation = Some(Violation {
                        schedule: next_path,
                        message: msg,
                    });
                    return report;
                }
                if seen.insert(fingerprint(&next)) {
                    stack.push((next, next_path));
                } else {
                    report.deduped += 1;
                }
            }

            if all_done {
                if let Err(msg) = state.finale() {
                    report.violation = Some(Violation {
                        schedule: path,
                        message: format!("finale: {msg}"),
                    });
                    return report;
                }
            } else if !any_ran && any_blocked {
                report.violation = Some(Violation {
                    schedule: path,
                    message: "deadlock: no thread can run but some are still blocked".to_string(),
                });
                return report;
            }
        }
        report
    }
}

/// Re-runs `schedule` from `model`'s initial state, returning the final
/// state and the first invariant failure hit along the way (if any).
pub fn replay<M: Model>(mut model: M, schedule: &[usize]) -> (M, Option<String>) {
    for &tid in schedule {
        if model.step(tid) != Step::Ran {
            return (
                model,
                Some(format!("schedule stuck: thread {tid} did not run")),
            );
        }
        if let Err(msg) = model.invariant() {
            return (model, Some(msg));
        }
    }
    (model, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each do read-modify-write on a shared counter. In the
    /// `atomic` variant the increment is one step; in the racy variant it
    /// is a separate read step and write step, so interleavings lose
    /// updates.
    #[derive(Clone, Hash)]
    struct CounterModel {
        atomic: bool,
        shared: u8,
        // per-thread: program counter (0 = start, 1 = read done, 2 = done)
        // and the value read
        pc: [u8; 2],
        tmp: [u8; 2],
    }

    impl CounterModel {
        fn new(atomic: bool) -> Self {
            CounterModel {
                atomic,
                shared: 0,
                pc: [0; 2],
                tmp: [0; 2],
            }
        }
    }

    impl Model for CounterModel {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn thread_count(&self) -> usize {
            2
        }
        fn step(&mut self, tid: usize) -> Step {
            if self.atomic {
                match self.pc[tid] {
                    0 => {
                        self.shared += 1;
                        self.pc[tid] = 2;
                        Step::Ran
                    }
                    _ => Step::Done,
                }
            } else {
                match self.pc[tid] {
                    0 => {
                        self.tmp[tid] = self.shared;
                        self.pc[tid] = 1;
                        Step::Ran
                    }
                    1 => {
                        self.shared = self.tmp[tid] + 1;
                        self.pc[tid] = 2;
                        Step::Ran
                    }
                    _ => Step::Done,
                }
            }
        }
        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }
        fn finale(&self) -> Result<(), String> {
            if self.shared == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter is {} not 2", self.shared))
            }
        }
    }

    #[test]
    fn atomic_counter_passes_exhaustively() {
        let r = Checker::default().check(CounterModel::new(true));
        assert!(r.passed(), "report: {r:?}");
        assert!(r.states_explored >= 3);
    }

    #[test]
    fn racy_counter_yields_counterexample_schedule() {
        let r = Checker::default().check(CounterModel::new(false));
        let v = r.violation.expect("racy counter must fail");
        assert!(v.message.contains("lost update"), "got: {}", v.message);
        // The counterexample must replay: both reads before both writes.
        let (end, err) = replay(CounterModel::new(false), &v.schedule);
        assert!(err.is_none(), "replay broke: {err:?}");
        assert!(end.pc.iter().all(|&p| p == 2));
        assert_eq!(end.shared, 1, "replayed schedule must lose an update");
    }

    /// A thread that blocks forever while the other finishes → deadlock.
    #[derive(Clone, Hash)]
    struct StuckModel {
        pc: [u8; 2],
    }

    impl Model for StuckModel {
        fn name(&self) -> &'static str {
            "stuck"
        }
        fn thread_count(&self) -> usize {
            2
        }
        fn step(&mut self, tid: usize) -> Step {
            match (tid, self.pc[tid]) {
                (0, 0) => {
                    self.pc[0] = 1;
                    Step::Ran
                }
                (0, _) => Step::Done,
                // thread 1 waits for a signal nobody sends
                (1, _) => Step::Blocked,
                _ => unreachable!(),
            }
        }
        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn blocked_forever_is_reported_as_deadlock() {
        let r = Checker::default().check(StuckModel { pc: [0; 2] });
        let v = r.violation.expect("stuck model must deadlock");
        assert!(v.message.contains("deadlock"), "got: {}", v.message);
    }

    #[test]
    fn depth_bound_marks_report_non_exhaustive() {
        let c = Checker {
            max_depth: 1,
            max_states: 1000,
        };
        let r = c.check(CounterModel::new(false));
        assert!(!r.exhausted);
    }
}
