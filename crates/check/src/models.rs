//! Models of the workspace's concurrency protocols, checked by
//! [`crate::model::Checker`].
//!
//! Each model exists in a **good** variant mirroring the shipped code and
//! at least one **known-bad** variant reproducing a historical or
//! plausible bug. The good variants must pass exhaustively; the bad ones
//! must yield a counterexample schedule — `lint-concurrency` enforces
//! both directions, so the checker itself is validated every run.
//!
//! - [`QueueModel`] — `harl-serve`'s `JobQueue`: a bounded priority
//!   queue under one mutex + condvar, with submitter / popper / closer
//!   threads. Bad variant: a popper that skips the wake-up recheck
//!   (classic lost "spurious wakeup" discipline) and pops from an empty
//!   queue.
//! - [`DirLockModel`] — `harl-store`'s `DirLock` stale-lock steal with
//!   two racing stealers and a dead previous owner. Good variant is the
//!   tmp + `hard_link` acquire / rename-claim steal; bad variant is the
//!   legacy read-check-`remove_file`-`create_new` sequence, where the
//!   second stealer's `remove_file` deletes the first winner's fresh
//!   lock and both end up holding it.
//! - [`ChunkStealModel`] — `harl-par`'s `map_indexed` work cursor. Good
//!   variant claims a chunk with one `fetch_add`; bad variant splits it
//!   into a read step and a write step, so two workers claim the same
//!   chunk.

use crate::model::{Checker, Model, Report, Step};

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

/// One logical submitter: pushes its items one by one.
#[derive(Clone, Hash)]
struct Submitter {
    pc: u8,
    idx: usize,
    /// `(priority, item id)` to push, in order.
    items: Vec<(i8, u8)>,
}

#[derive(Clone, Hash)]
struct Popper {
    pc: u8,
}

/// Model of `harl_serve::queue::JobQueue`: mutex-protected bounded
/// priority queue, condvar for poppers, a closer that shuts it down.
#[derive(Clone, Hash)]
pub struct QueueModel {
    name: &'static str,
    broken_wait: bool,
    capacity: usize,
    // shared state
    lock: Option<u8>,
    /// FIFO condvar wait queue (thread ids).
    waiters: Vec<u8>,
    /// Notified threads that still need to re-acquire the mutex.
    awakened: Vec<u8>,
    /// `(priority, seq, item)`; pop takes max priority, min seq.
    heap: Vec<(i8, u8, u8)>,
    next_seq: u8,
    closed: bool,
    // histories for the invariants
    accepted: Vec<u8>,
    popped: Vec<(i8, u8, u8)>,
    rejected: u8,
    bad_pop_empty: bool,
    // threads
    submitters: Vec<Submitter>,
    poppers: Vec<Popper>,
    closer_pc: u8,
}

impl QueueModel {
    fn build(
        name: &'static str,
        items: Vec<Vec<(i8, u8)>>,
        poppers: usize,
        capacity: usize,
        broken_wait: bool,
    ) -> Self {
        QueueModel {
            name,
            broken_wait,
            capacity,
            lock: None,
            waiters: Vec::new(),
            awakened: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
            closed: false,
            accepted: Vec::new(),
            popped: Vec::new(),
            rejected: 0,
            bad_pop_empty: false,
            submitters: items
                .into_iter()
                .map(|items| Submitter {
                    pc: 0,
                    idx: 0,
                    items,
                })
                .collect(),
            poppers: (0..poppers).map(|_| Popper { pc: 0 }).collect(),
            closer_pc: 0,
        }
    }

    /// Two submitters (same priority, so FIFO order is observable), two
    /// poppers, capacity 2: both items always fit.
    pub fn well_synchronized() -> Self {
        Self::build(
            "queue/well-synchronized",
            vec![vec![(0, 10)], vec![(0, 11)]],
            2,
            2,
            false,
        )
    }

    /// Same threads at capacity 1: exercises the busy-reply path — a
    /// rejected submit must never be silently lost (accounting checked
    /// in the finale).
    pub fn contended() -> Self {
        Self::build(
            "queue/contended-capacity-1",
            vec![vec![(0, 10)], vec![(1, 11)]],
            2,
            1,
            false,
        )
    }

    /// A popper that skips the post-wake recheck: one submitter, two
    /// poppers — the non-waiting popper can steal the item between the
    /// notify and the waiter's re-acquire, and the broken waiter then
    /// pops an empty queue.
    pub fn broken_wait() -> Self {
        Self::build(
            "queue/broken-wait-no-recheck",
            vec![vec![(0, 10)]],
            2,
            1,
            true,
        )
    }

    fn pop_best(&mut self) -> (i8, u8, u8) {
        let mut best = 0;
        for i in 1..self.heap.len() {
            let (bp, bs, _) = self.heap[best];
            let (p, s, _) = self.heap[i];
            if p > bp || (p == bp && s < bs) {
                best = i;
            }
        }
        self.heap.remove(best)
    }

    fn step_submitter(&mut self, s: usize, tid: u8) -> Step {
        match self.submitters[s].pc {
            0 => {
                if self.submitters[s].idx >= self.submitters[s].items.len() {
                    return Step::Done;
                }
                if self.lock.is_some() {
                    return Step::Blocked;
                }
                self.lock = Some(tid);
                self.submitters[s].pc = 1;
                Step::Ran
            }
            1 => {
                let (prio, item) = self.submitters[s].items[self.submitters[s].idx];
                if self.closed || self.heap.len() >= self.capacity {
                    self.rejected += 1;
                } else {
                    self.heap.push((prio, self.next_seq, item));
                    self.next_seq += 1;
                    self.accepted.push(item);
                }
                self.submitters[s].pc = 2;
                Step::Ran
            }
            2 => {
                // drop the guard before notifying, like the real push()
                self.lock = None;
                self.submitters[s].pc = 3;
                Step::Ran
            }
            _ => {
                // notify_one
                if !self.waiters.is_empty() {
                    let w = self.waiters.remove(0);
                    self.awakened.push(w);
                }
                self.submitters[s].idx += 1;
                self.submitters[s].pc = 0;
                Step::Ran
            }
        }
    }

    fn step_popper(&mut self, p: usize, tid: u8) -> Step {
        match self.poppers[p].pc {
            0 => {
                if self.lock.is_some() {
                    return Step::Blocked;
                }
                self.lock = Some(tid);
                self.poppers[p].pc = 1;
                Step::Ran
            }
            1 => {
                // critical section: pop, exit, or wait
                if !self.heap.is_empty() {
                    let e = self.pop_best();
                    self.popped.push(e);
                    self.poppers[p].pc = 2;
                } else if self.closed {
                    self.poppers[p].pc = 4;
                } else {
                    // condvar wait: release + enqueue atomically
                    self.lock = None;
                    self.waiters.push(tid);
                    self.poppers[p].pc = 3;
                }
                Step::Ran
            }
            2 => {
                self.lock = None;
                self.poppers[p].pc = 0;
                Step::Ran
            }
            3 => {
                if self.waiters.contains(&tid) {
                    return Step::Blocked; // not yet notified
                }
                if self.lock.is_some() {
                    return Step::Blocked; // notified, mutex contended
                }
                self.awakened.retain(|&w| w != tid);
                self.lock = Some(tid);
                // the bug: a correct popper rechecks (pc 1); the broken
                // one assumes the wake-up means an item is present
                self.poppers[p].pc = if self.broken_wait { 5 } else { 1 };
                Step::Ran
            }
            4 => {
                self.lock = None;
                self.poppers[p].pc = 6;
                Step::Ran
            }
            5 => {
                if self.heap.is_empty() {
                    self.bad_pop_empty = true;
                } else {
                    let e = self.pop_best();
                    self.popped.push(e);
                }
                self.poppers[p].pc = 2;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn step_closer(&mut self, tid: u8) -> Step {
        match self.closer_pc {
            0 => {
                if self.lock.is_some() {
                    return Step::Blocked;
                }
                self.lock = Some(tid);
                self.closer_pc = 1;
                Step::Ran
            }
            1 => {
                self.closed = true;
                self.closer_pc = 2;
                Step::Ran
            }
            2 => {
                self.lock = None;
                self.closer_pc = 3;
                Step::Ran
            }
            3 => {
                // notify_all
                self.awakened.append(&mut self.waiters);
                self.closer_pc = 4;
                Step::Ran
            }
            _ => Step::Done,
        }
    }
}

impl Model for QueueModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn thread_count(&self) -> usize {
        self.submitters.len() + self.poppers.len() + 1
    }

    fn step(&mut self, tid: usize) -> Step {
        let s = self.submitters.len();
        let p = self.poppers.len();
        if tid < s {
            self.step_submitter(tid, tid as u8)
        } else if tid < s + p {
            self.step_popper(tid - s, tid as u8)
        } else {
            self.step_closer(tid as u8)
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.bad_pop_empty {
            return Err("popper consumed from an empty queue (missing recheck after wake)".into());
        }
        if self.heap.len() > self.capacity {
            return Err(format!(
                "queue holds {} items, capacity {}",
                self.heap.len(),
                self.capacity
            ));
        }
        // no item pops twice
        for (i, (_, _, a)) in self.popped.iter().enumerate() {
            if self.popped[i + 1..].iter().any(|(_, _, b)| a == b) {
                return Err(format!("item {a} popped twice"));
            }
        }
        // nothing pops that was never accepted
        for (_, _, a) in &self.popped {
            if !self.accepted.contains(a) {
                return Err(format!("item {a} popped but never accepted"));
            }
        }
        Ok(())
    }

    fn finale(&self) -> Result<(), String> {
        if !self.heap.is_empty() {
            return Err(format!("{} item(s) stranded in the queue", self.heap.len()));
        }
        if self.popped.len() != self.accepted.len() {
            return Err(format!(
                "accepted {} item(s) but popped {}",
                self.accepted.len(),
                self.popped.len()
            ));
        }
        // every submit is accounted for: accepted or explicitly rejected
        let attempts: usize = self.submitters.iter().map(|s| s.items.len()).sum();
        if self.accepted.len() + self.rejected as usize != attempts {
            return Err(format!(
                "{} attempts but {} accepted + {} rejected",
                attempts,
                self.accepted.len(),
                self.rejected
            ));
        }
        // FIFO within priority: pop order must have increasing seq per prio
        for (i, &(prio, seq, _)) in self.popped.iter().enumerate() {
            for &(p2, s2, _) in &self.popped[i + 1..] {
                if p2 == prio && s2 < seq {
                    return Err(format!(
                        "priority {prio}: seq {s2} popped after seq {seq} (FIFO broken)"
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// DirLock steal
// ---------------------------------------------------------------------------

/// Pid recorded by the dead previous owner.
const DEAD_PID: u8 = 0;

/// Model of two processes racing to steal a `DirLock` held by a dead
/// pid. File-system operations (`hard_link`, `rename`, `remove_file`,
/// reads) are single atomic steps; `lock` is the lock file's content,
/// `tombs[i]` is stealer `i`'s private rename target.
#[derive(Clone, Hash)]
pub struct DirLockModel {
    name: &'static str,
    legacy: bool,
    lock: Option<u8>,
    tombs: [Option<u8>; 2],
    pcs: [u8; 2],
    won: [bool; 2],
}

impl DirLockModel {
    /// The shipped protocol: acquire by `hard_link` of a pre-written tmp
    /// file, steal by `rename` to a stealer-unique tomb, verify the tomb
    /// content, restore if it turned out to be a live owner's lock.
    pub fn atomic_steal() -> Self {
        DirLockModel {
            name: "dirlock/atomic-steal",
            legacy: false,
            lock: Some(DEAD_PID),
            tombs: [None, None],
            pcs: [0, 0],
            won: [false, false],
        }
    }

    /// The historical bug: read pid, check liveness, `remove_file`,
    /// `create_new`. The second stealer's remove deletes the first
    /// winner's fresh lock and both acquire.
    pub fn legacy_remove() -> Self {
        DirLockModel {
            name: "dirlock/legacy-remove-race",
            legacy: true,
            ..Self::atomic_steal()
        }
    }

    fn pid(i: usize) -> u8 {
        i as u8 + 1
    }

    fn step_atomic(&mut self, i: usize) -> Step {
        let pid = Self::pid(i);
        match self.pcs[i] {
            0 => {
                // write tmp (private file, content = own pid)
                self.pcs[i] = 1;
                Step::Ran
            }
            1 => {
                // hard_link(tmp, lock): atomic create-with-content
                if self.lock.is_none() {
                    self.lock = Some(pid);
                    self.won[i] = true;
                    self.pcs[i] = 9;
                } else {
                    self.pcs[i] = 2;
                }
                Step::Ran
            }
            2 => {
                // read the lock file
                match self.lock {
                    None => self.pcs[i] = 1,           // vanished: retry acquire
                    Some(DEAD_PID) => self.pcs[i] = 3, // stale: steal it
                    Some(_) => self.pcs[i] = 9,        // live owner: we lost
                }
                Step::Ran
            }
            3 => {
                // rename(lock, tomb_i): claims whatever is there now
                match self.lock.take() {
                    None => self.pcs[i] = 1, // NotFound: someone else claimed it
                    Some(content) => {
                        self.tombs[i] = Some(content);
                        self.pcs[i] = 4;
                    }
                }
                Step::Ran
            }
            4 => {
                // verify what we actually stole
                let content = self.tombs[i].take().expect("tomb exists at pc 4");
                if content == DEAD_PID {
                    // genuinely stale: discard the tomb, race to acquire
                    self.pcs[i] = 1;
                } else {
                    // we stole a live lock — put it back if still absent
                    if self.lock.is_none() {
                        self.lock = Some(content);
                    }
                    self.pcs[i] = 9;
                }
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn step_legacy(&mut self, i: usize) -> Step {
        let pid = Self::pid(i);
        match self.pcs[i] {
            0 => {
                // read + liveness check
                match self.lock {
                    None => self.pcs[i] = 2,           // absent: try create
                    Some(DEAD_PID) => self.pcs[i] = 1, // stale: remove it
                    Some(_) => self.pcs[i] = 9,        // live owner: we lost
                }
                Step::Ran
            }
            1 => {
                // remove_file(lock) — unconditional: this is the bug
                self.lock = None;
                self.pcs[i] = 2;
                Step::Ran
            }
            2 => {
                // create_new
                if self.lock.is_none() {
                    self.lock = Some(pid);
                    self.won[i] = true;
                    self.pcs[i] = 9;
                } else {
                    self.pcs[i] = 0;
                }
                Step::Ran
            }
            _ => Step::Done,
        }
    }
}

impl Model for DirLockModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn thread_count(&self) -> usize {
        2
    }

    fn step(&mut self, tid: usize) -> Step {
        if self.legacy {
            self.step_legacy(tid)
        } else {
            self.step_atomic(tid)
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.won.iter().filter(|&&w| w).count() > 1 {
            return Err("both stealers acquired the lock (single-writer broken)".into());
        }
        Ok(())
    }

    fn finale(&self) -> Result<(), String> {
        let winners: Vec<usize> = (0..2).filter(|&i| self.won[i]).collect();
        if winners.len() != 1 {
            return Err(format!("{} winner(s), expected exactly 1", winners.len()));
        }
        let expect = Self::pid(winners[0]);
        if self.lock != Some(expect) {
            return Err(format!(
                "lock file holds {:?} at quiescence, winner pid is {expect}",
                self.lock
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// harl-par chunk stealing
// ---------------------------------------------------------------------------

/// Model of `ThreadPool::map_indexed`'s shared work cursor: two workers
/// claiming chunks of one item from a pool of `total`.
#[derive(Clone, Hash)]
pub struct ChunkStealModel {
    name: &'static str,
    racy: bool,
    total: u8,
    cursor: u8,
    /// How many times each item was claimed.
    counts: Vec<u8>,
    pcs: [u8; 2],
    tmp: [u8; 2],
}

impl ChunkStealModel {
    /// The shipped cursor: one `fetch_add` claims the chunk atomically.
    pub fn atomic_cursor() -> Self {
        ChunkStealModel {
            name: "par/atomic-cursor",
            racy: false,
            total: 3,
            cursor: 0,
            counts: vec![0; 3],
            pcs: [0; 2],
            tmp: [0; 2],
        }
    }

    /// Broken variant: the claim is a separate load and store, so two
    /// workers can claim the same chunk.
    pub fn racy_cursor() -> Self {
        ChunkStealModel {
            name: "par/racy-read-then-write",
            racy: true,
            ..Self::atomic_cursor()
        }
    }
}

impl Model for ChunkStealModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn thread_count(&self) -> usize {
        2
    }

    fn step(&mut self, tid: usize) -> Step {
        if !self.racy {
            if self.cursor >= self.total {
                return Step::Done;
            }
            // fetch_add: claim + advance in one step
            self.counts[self.cursor as usize] += 1;
            self.cursor += 1;
            Step::Ran
        } else {
            match self.pcs[tid] {
                0 => {
                    if self.cursor >= self.total {
                        return Step::Done;
                    }
                    self.tmp[tid] = self.cursor; // load
                    self.pcs[tid] = 1;
                    Step::Ran
                }
                _ => {
                    let at = self.tmp[tid];
                    if at < self.total {
                        self.counts[at as usize] += 1;
                    }
                    self.cursor = at + 1; // store
                    self.pcs[tid] = 0;
                    Step::Ran
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 1 {
                return Err(format!("chunk {i} claimed {c} times"));
            }
        }
        Ok(())
    }

    fn finale(&self) -> Result<(), String> {
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 1 {
                return Err(format!("chunk {i} claimed {c} times at quiescence"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------------

/// One model run plus the expectation `lint-concurrency` enforces.
pub struct SuiteEntry {
    pub report: Report,
    /// `false`: the model must pass exhaustively. `true`: the model is a
    /// known-bad variant and the checker must find a counterexample.
    pub expect_violation: bool,
}

/// Runs every bundled model (good and known-bad) under `checker`.
pub fn run_suite(checker: &Checker) -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            report: checker.check(QueueModel::well_synchronized()),
            expect_violation: false,
        },
        SuiteEntry {
            report: checker.check(QueueModel::contended()),
            expect_violation: false,
        },
        SuiteEntry {
            report: checker.check(DirLockModel::atomic_steal()),
            expect_violation: false,
        },
        SuiteEntry {
            report: checker.check(ChunkStealModel::atomic_cursor()),
            expect_violation: false,
        },
        SuiteEntry {
            report: checker.check(QueueModel::broken_wait()),
            expect_violation: true,
        },
        SuiteEntry {
            report: checker.check(DirLockModel::legacy_remove()),
            expect_violation: true,
        },
        SuiteEntry {
            report: checker.check(ChunkStealModel::racy_cursor()),
            expect_violation: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::replay;

    #[test]
    fn queue_well_synchronized_passes_exhaustively() {
        let r = Checker::default().check(QueueModel::well_synchronized());
        assert!(r.passed(), "violation: {:?}", r.violation);
        assert!(r.states_explored > 50, "suspiciously small state space");
    }

    #[test]
    fn queue_contended_busy_replies_never_lose_items() {
        let r = Checker::default().check(QueueModel::contended());
        assert!(r.passed(), "violation: {:?}", r.violation);
    }

    #[test]
    fn queue_broken_wait_pops_empty_and_replays() {
        let r = Checker::default().check(QueueModel::broken_wait());
        let v = r.violation.expect("missing recheck must be caught");
        assert!(
            v.message.contains("empty queue"),
            "unexpected violation: {}",
            v.message
        );
        let (_, err) = replay(QueueModel::broken_wait(), &v.schedule);
        assert!(err.is_some(), "counterexample must replay to a failure");
    }

    #[test]
    fn dirlock_atomic_steal_has_single_winner() {
        let r = Checker::default().check(DirLockModel::atomic_steal());
        assert!(r.passed(), "violation: {:?}", r.violation);
    }

    #[test]
    fn dirlock_legacy_remove_double_acquires() {
        let r = Checker::default().check(DirLockModel::legacy_remove());
        let v = r.violation.expect("legacy steal race must be caught");
        assert!(
            v.message.contains("both stealers"),
            "unexpected violation: {}",
            v.message
        );
        let (_, err) = replay(DirLockModel::legacy_remove(), &v.schedule);
        assert!(err.is_some(), "counterexample must replay to a failure");
    }

    #[test]
    fn chunk_atomic_cursor_claims_each_once() {
        let r = Checker::default().check(ChunkStealModel::atomic_cursor());
        assert!(r.passed(), "violation: {:?}", r.violation);
    }

    #[test]
    fn chunk_racy_cursor_double_claims() {
        let r = Checker::default().check(ChunkStealModel::racy_cursor());
        let v = r.violation.expect("racy cursor must be caught");
        assert!(v.message.contains("claimed"), "unexpected: {}", v.message);
    }

    #[test]
    fn suite_matches_expectations() {
        for e in run_suite(&Checker::default()) {
            if e.expect_violation {
                assert!(
                    e.report.violation.is_some(),
                    "{} should have failed",
                    e.report.model
                );
            } else {
                assert!(
                    e.report.passed(),
                    "{} failed: {:?}",
                    e.report.model,
                    e.report.violation
                );
            }
        }
    }
}
