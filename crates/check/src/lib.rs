//! # harl-check
//!
//! Concurrency correctness toolkit for the HARL workspace, in two parts:
//!
//! 1. [`sync`] — drop-in wrappers over `std::sync` primitives
//!    ([`CMutex`], [`CCondvar`], role-declared atomics). In a normal build
//!    they are `#[repr(transparent)]` newtypes that compile to plain
//!    `std::sync` (a zero-overhead test pins this). Compiled with
//!    `--cfg harl_check` *and* run with `HARL_CHECK=1`, every acquisition
//!    is recorded in a per-thread lock stack and a global class-level
//!    acquisition graph, failing fast on:
//!    - **C001** lock-order inversion (an ABBA cycle in the graph),
//!    - **C002** double-lock (same instance or same-class nesting),
//!    - **C004** unprotected shared writes (`assert_held` misses,
//!      `Ordering::Relaxed` on publish flags),
//!
//!    and recording **C003** warnings for long holds (time threshold,
//!    condvar waits with other locks held, locks held across a blocking
//!    [`assert_lock_free`] region such as a `Measurer` call).
//!
//! 2. [`model`] — a small explicit-state model checker that exhaustively
//!    explores thread interleavings of [`models`] of the workspace's
//!    concurrency primitives (the serve `JobQueue`, the store `DirLock`
//!    steal protocol, `harl-par` chunk stealing), checking an invariant
//!    after every transition and a completion invariant at quiescence.
//!    Violations are reported as **C005** with the exact thread schedule
//!    that reproduces them. `cargo test -p harl-check` runs the models;
//!    the `lint-concurrency` binary runs them standalone (mirroring
//!    `lint-schedules`) and also asserts that known-bad model variants
//!    *are* caught.
//!
//! Diagnostics flow through the `harl-verify` machinery (codes C001–C005,
//! `lint-concurrency --explain <code>`), counters through `harl-obs`
//! (`harl_check_violations_total{code=...}`).

pub mod model;
pub mod models;
pub mod sync;

pub use sync::{AtomicRole, CAtomicBool, CAtomicU64, CAtomicUsize, CCondvar, CMutex};

use harl_verify::Diagnostic;

/// Environment variable that turns the instrumented wrappers on at
/// runtime (the instrumentation must also be compiled in with
/// `--cfg harl_check`).
pub const CHECK_ENV: &str = "HARL_CHECK";

/// Environment variable overriding the C003 hold-time threshold, in
/// milliseconds (default [`DEFAULT_HOLD_MS`]).
pub const HOLD_MS_ENV: &str = "HARL_CHECK_HOLD_MS";

/// Default lock-hold duration above which a C003 warning is recorded.
pub const DEFAULT_HOLD_MS: u64 = 100;

#[cfg(harl_check)]
mod active {
    use super::*;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Mutex;

    // 0 = undecided, 1 = off, 2 = on
    static STATE: AtomicU8 = AtomicU8::new(0);

    pub fn checking_enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let on = std::env::var(CHECK_ENV)
                    .map(|v| v.trim() == "1")
                    .unwrap_or(false);
                STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
                on
            }
        }
    }

    /// Turns checking on regardless of the environment (for tests).
    pub fn force_enable() {
        STATE.store(2, Ordering::Relaxed);
    }

    static WARNINGS: Mutex<Vec<Diagnostic>> = Mutex::new(Vec::new());

    pub(crate) fn record_warning(d: Diagnostic) {
        violation_counter(&d).inc();
        WARNINGS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(d);
    }

    /// Drains the warn-severity findings recorded so far (C003).
    pub fn take_warnings() -> Vec<Diagnostic> {
        std::mem::take(
            &mut *WARNINGS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Reports an error-severity violation: counts it, then panics with
    /// the rendered diagnostic (fail fast — the whole point of running
    /// under `HARL_CHECK=1`).
    pub(crate) fn fail(d: Diagnostic) -> ! {
        violation_counter(&d).inc();
        panic!("harl-check: {d}");
    }

    fn violation_counter(d: &Diagnostic) -> harl_obs::Counter {
        harl_obs::global().counter(&format!(
            "harl_check_violations_total{{code=\"{}\"}}",
            d.code.code()
        ))
    }
}

#[cfg(harl_check)]
pub use active::{checking_enabled, force_enable, take_warnings};

#[cfg(not(harl_check))]
mod inactive {
    use super::*;

    /// Always false: the instrumentation was not compiled in (build with
    /// `RUSTFLAGS="--cfg harl_check"` to enable it).
    #[inline(always)]
    pub fn checking_enabled() -> bool {
        false
    }

    /// No-op without `--cfg harl_check`.
    #[inline(always)]
    pub fn force_enable() {}

    /// Always empty without `--cfg harl_check`.
    #[inline(always)]
    pub fn take_warnings() -> Vec<Diagnostic> {
        Vec::new()
    }
}

#[cfg(not(harl_check))]
pub use inactive::{checking_enabled, force_enable, take_warnings};

/// Marks a blocking region (a `Measurer` call, file I/O, a network wait):
/// under checking, records a C003 warning if the current thread holds any
/// instrumented lock — the "lock held across `.await`" pattern. A no-op
/// otherwise.
#[inline]
pub fn assert_lock_free(context: &str) {
    #[cfg(harl_check)]
    sync::assert_lock_free_impl(context);
    #[cfg(not(harl_check))]
    let _ = context;
}
