//! Runs the bundled concurrency models through the interleaving checker
//! and prints a per-model table — the concurrency counterpart of
//! `lint-schedules`.
//!
//! Good models (mirrors of the shipped protocols) must pass
//! *exhaustively* within the bound; known-bad variants must yield a
//! counterexample, which validates the checker itself on every run. Any
//! expectation miss, or a good model leaving its bound unexplored, exits
//! nonzero.
//!
//! Usage:
//!   lint-concurrency [--bound DEPTH] [--list]
//!   lint-concurrency --explain <V001..V006|C001..C005>

use harl_check::model::Checker;
use harl_check::models::run_suite;
use harl_verify::{LintCode, Severity};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--explain") {
        let Some(code) = args.get(1) else {
            eprintln!("usage: lint-concurrency --explain <V001..V006|C001..C005>");
            std::process::exit(2);
        };
        match LintCode::from_code(code) {
            Some(c) => {
                println!("{}", c.explain());
                return;
            }
            None => {
                eprintln!("unknown lint code `{code}`; known codes:");
                for c in LintCode::ALL {
                    eprintln!("  {} {}", c.code(), c.name());
                }
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("--list") {
        for c in LintCode::CONCURRENCY {
            let sev = match c.severity() {
                Severity::Error => "error",
                Severity::Warn => "warn",
            };
            println!("{} {:<26} {}", c.code(), c.name(), sev);
        }
        return;
    }

    let mut checker = Checker::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bound" => {
                i += 1;
                checker.max_depth = args.get(i).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--bound needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: lint-concurrency [--bound DEPTH] [--list] [--explain CODE]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "model-checking concurrency protocols (depth bound {}, state bound {})\n",
        checker.max_depth, checker.max_states
    );
    println!(
        "{:<32} {:<8} {:>8} {:>8} {:>6} {:>11} {:<8}",
        "model", "expect", "states", "deduped", "depth", "exhausted", "result"
    );
    println!("{}", "-".repeat(88));

    let mut failures = 0u32;
    let mut counterexamples: Vec<(String, String)> = Vec::new();
    for entry in run_suite(&checker) {
        let r = &entry.report;
        let ok = if entry.expect_violation {
            r.violation.is_some()
        } else {
            r.passed()
        };
        if !ok {
            failures += 1;
        }
        println!(
            "{:<32} {:<8} {:>8} {:>8} {:>6} {:>11} {:<8}",
            r.model,
            if entry.expect_violation {
                "violate"
            } else {
                "pass"
            },
            r.states_explored,
            r.deduped,
            r.max_depth_seen,
            if r.exhausted { "yes" } else { "NO" },
            if ok { "ok" } else { "FAIL" },
        );
        if let Some(v) = &r.violation {
            let schedule = v
                .schedule
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",");
            counterexamples.push((format!("{} [{}]", r.model, schedule), v.message.clone()));
        }
    }
    println!("{}", "-".repeat(88));

    if !counterexamples.is_empty() {
        println!("\ncounterexample schedules (thread ids in step order):");
        for (wher, msg) in &counterexamples {
            // Bad-variant counterexamples are expected; they are printed
            // as the C005 diagnostic a real finding would carry.
            println!(
                "  {}: {} — {}",
                LintCode::ModelCheckViolation.code(),
                wher,
                msg
            );
        }
    }

    if failures > 0 {
        println!("\nFAIL: {failures} model(s) did not match expectations");
        std::process::exit(1);
    }
    println!("\nOK: good models exhaustively verified, known-bad models caught");
}
