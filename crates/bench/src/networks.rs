//! End-to-end network experiments: Figures 8–10 and Table 4.

use serde::Serialize;

use harl_ansor::AnsorNetworkTuner;
use harl_core::{HarlConfig, HarlNetworkTuner};
use harl_nn_models::Network;
use harl_tensor_sim::{Hardware, MeasureConfig, Measurer};

use crate::report::{f3, fx, Table};
use crate::scale::Scale;

/// Relative overhead added to the estimated (sum of subgraphs) latency to
/// model inter-subgraph communication — the gap between "Estimated HARL"
/// and "Measured HARL" in Table 4.
pub const BOUNDARY_OVERHEAD: f64 = 0.03;

/// One network × hardware × batch comparison.
#[derive(Debug, Serialize)]
pub struct NetPair {
    pub network: String,
    pub gpu: bool,
    pub batch: u32,
    pub ansor_latency: f64,
    pub harl_latency: f64,
    pub ansor_seconds: f64,
    pub harl_seconds: f64,
    pub harl_seconds_to_ansor: Option<f64>,
    pub trials: u64,
}

impl NetPair {
    pub fn perf_ratio(&self) -> f64 {
        self.ansor_latency / self.harl_latency
    }

    pub fn search_time_ratio(&self) -> f64 {
        match self.harl_seconds_to_ansor {
            Some(t) => (t / self.ansor_seconds).min(1.0),
            None => 1.0,
        }
    }
}

/// Runs Ansor and HARL network tuning with identical budgets.
pub fn run_net_pair(scale: &Scale, net: Network, hw: &Hardware, batch: u32) -> NetPair {
    let trials = scale.net_budget(net);

    let am = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut ansor = AnsorNetworkTuner::new(
        net.subgraphs(batch),
        &am,
        scale.ansor_config(),
        scale.harl_config().grad,
    );
    ansor.tune(trials);

    let hm = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut harl = HarlNetworkTuner::new(net.subgraphs(batch), &hm, scale.harl_config());
    harl.tune(trials);

    let harl_seconds_to_ansor = harl
        .trace
        .first_reaching(ansor.network_latency())
        .map(|(_, s)| s);
    NetPair {
        network: net.name().to_string(),
        gpu: matches!(hw, Hardware::Gpu(_)),
        batch,
        ansor_latency: ansor.network_latency(),
        harl_latency: harl.network_latency(),
        ansor_seconds: am.sim_seconds(),
        harl_seconds: hm.sim_seconds(),
        harl_seconds_to_ansor,
        trials,
    }
}

/// Figures 8 and 9 data: all network × hardware × batch pairs.
#[derive(Debug, Serialize)]
pub struct NetworkComparison {
    pub pairs: Vec<NetPair>,
}

pub fn network_comparison(scale: &Scale) -> NetworkComparison {
    // every (network, hardware, batch) run is independent: fan out
    let mut jobs = Vec::new();
    for net in Network::ALL {
        for hw in [Hardware::cpu(), Hardware::gpu()] {
            for &batch in &scale.batches {
                jobs.push((net, hw.clone(), batch));
            }
        }
    }
    let mut pairs: Vec<Option<NetPair>> = Vec::new();
    pairs.resize_with(jobs.len(), || None);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = jobs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(pairs.chunks_mut(chunk)) {
            scope.spawn(move || {
                for ((net, hw, batch), slot) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(run_net_pair(scale, *net, hw, *batch));
                }
            });
        }
    });
    NetworkComparison {
        pairs: pairs.into_iter().flatten().collect(),
    }
}

fn pair_label(p: &NetPair) -> String {
    format!(
        "{}-b{}{}",
        p.network,
        p.batch,
        if p.gpu { " (G)" } else { "" }
    )
}

pub fn render_fig8(c: &NetworkComparison) -> String {
    let mut t = Table::new(
        "Fig 8: normalized end-to-end performance (best-of-pair = 1.0)",
        &["network", "Ansor", "HARL", "HARL/Ansor"],
    );
    for p in &c.pairs {
        let r = p.perf_ratio();
        let (a, h) = if r >= 1.0 { (1.0 / r, 1.0) } else { (1.0, r) };
        t.row(vec![pair_label(p), f3(a), f3(h), fx(r)]);
    }
    let cpu: Vec<f64> = c
        .pairs
        .iter()
        .filter(|p| !p.gpu)
        .map(NetPair::perf_ratio)
        .collect();
    let gpu: Vec<f64> = c
        .pairs
        .iter()
        .filter(|p| p.gpu)
        .map(NetPair::perf_ratio)
        .collect();
    format!(
        "{}\nmean HARL/Ansor performance: CPU {}, GPU {}\n",
        t.render(),
        fx(crate::report::geomean(&cpu)),
        fx(crate::report::geomean(&gpu))
    )
}

pub fn render_fig9(c: &NetworkComparison) -> String {
    let mut t = Table::new(
        "Fig 9: normalized search time to reach Ansor's final performance",
        &["network", "Ansor", "HARL", "reduction"],
    );
    for p in &c.pairs {
        let s = p.search_time_ratio();
        t.row(vec![
            pair_label(p),
            f3(1.0),
            f3(s),
            format!("-{:.0}%", (1.0 - s) * 100.0),
        ]);
    }
    let cpu: Vec<f64> = c
        .pairs
        .iter()
        .filter(|p| !p.gpu)
        .map(NetPair::search_time_ratio)
        .collect();
    let gpu: Vec<f64> = c
        .pairs
        .iter()
        .filter(|p| p.gpu)
        .map(NetPair::search_time_ratio)
        .collect();
    format!(
        "{}\nmean HARL search time: CPU {} of Ansor, GPU {} of Ansor\n",
        t.render(),
        f3(crate::report::geomean(&cpu)),
        f3(crate::report::geomean(&gpu))
    )
}

/// Table 4 + Fig. 10: BERT-on-CPU deep dive with the subgraph-MAB ablation.
#[derive(Debug, Serialize)]
pub struct BertStudy {
    pub rows: Vec<BertRow>,
    pub estimated_speedup: f64,
    pub measured_speedup: f64,
    pub measured_speedup_no_mab: f64,
    /// Fig. 10 allocations: per subgraph `(T^n up to '=Ansor', total T^n)`.
    pub alloc_mab: Vec<(u64, u64)>,
    pub alloc_no_mab: Vec<(u64, u64)>,
}

#[derive(Debug, Serialize)]
pub struct BertRow {
    pub subgraph: String,
    /// Fraction of HARL's summed execution time.
    pub contribution: f64,
    /// Per-subgraph speedup of HARL over Ansor.
    pub speedup: f64,
}

fn allocations_split(rounds: &[(usize, u64)], n_tasks: usize, cut_trials: u64) -> Vec<(u64, u64)> {
    let mut upto = vec![0u64; n_tasks];
    let mut total = vec![0u64; n_tasks];
    let mut prev = 0u64;
    for &(task, after) in rounds {
        let used = after - prev;
        prev = after;
        total[task] += used;
        if after <= cut_trials {
            upto[task] += used;
        }
    }
    upto.into_iter().zip(total).collect()
}

pub fn bert_study(scale: &Scale) -> BertStudy {
    let net = Network::Bert;
    let batch = 1;
    let trials = scale.net_budget(net);
    let hw = Hardware::cpu();

    let am = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut ansor = AnsorNetworkTuner::new(
        net.subgraphs(batch),
        &am,
        scale.ansor_config(),
        scale.harl_config().grad,
    );
    ansor.tune(trials);
    let ansor_latency = ansor.network_latency();

    let hm = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut harl = HarlNetworkTuner::new(net.subgraphs(batch), &hm, scale.harl_config());
    harl.tune(trials);

    let nm = Measurer::new(hw.clone(), MeasureConfig::default());
    let no_mab_cfg = HarlConfig {
        subgraph_mab: false,
        ..scale.harl_config()
    };
    let mut no_mab = HarlNetworkTuner::new(net.subgraphs(batch), &nm, no_mab_cfg);
    no_mab.tune(trials);

    // --- Table 4 rows -----------------------------------------------------
    let total: f64 = harl
        .infos
        .iter()
        .zip(&harl.states)
        .map(|(i, s)| i.weight * s.best_time)
        .sum();
    let mut rows: Vec<BertRow> = (0..harl.infos.len())
        .map(|i| BertRow {
            subgraph: harl.infos[i].name.clone(),
            contribution: harl.infos[i].weight * harl.states[i].best_time / total,
            speedup: ansor.states[i].best_time / harl.states[i].best_time,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.contribution
            .partial_cmp(&a.contribution)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let estimated_speedup = ansor_latency / harl.network_latency();
    // measured = estimated + identical communication overhead on both sides
    let overhead = ansor_latency * BOUNDARY_OVERHEAD;
    let measured_speedup = (ansor_latency + overhead) / (harl.network_latency() + overhead);
    let measured_speedup_no_mab =
        (ansor_latency + overhead) / (no_mab.network_latency() + overhead);

    // --- Fig. 10 allocation split ------------------------------------------
    let cut = |tuner_rounds: &[(usize, u64, f64)]| -> u64 {
        tuner_rounds
            .iter()
            .find(|(_, _, lat)| *lat <= ansor_latency)
            .map(|(_, after, _)| *after)
            .unwrap_or(u64::MAX)
    };
    let harl_rounds: Vec<(usize, u64, f64)> = harl
        .rounds
        .iter()
        .map(|r| (r.task, r.trials_after, r.latency))
        .collect();
    let no_mab_rounds: Vec<(usize, u64, f64)> = no_mab
        .rounds
        .iter()
        .map(|r| (r.task, r.trials_after, r.latency))
        .collect();
    let n = harl.infos.len();
    let alloc_mab = allocations_split(
        &harl_rounds
            .iter()
            .map(|&(t, a, _)| (t, a))
            .collect::<Vec<_>>(),
        n,
        cut(&harl_rounds),
    );
    let alloc_no_mab = allocations_split(
        &no_mab_rounds
            .iter()
            .map(|&(t, a, _)| (t, a))
            .collect::<Vec<_>>(),
        n,
        cut(&no_mab_rounds),
    );

    BertStudy {
        rows,
        estimated_speedup,
        measured_speedup,
        measured_speedup_no_mab,
        alloc_mab,
        alloc_no_mab,
    }
}

pub fn render_table4(s: &BertStudy) -> String {
    let mut t = Table::new(
        "Table 4: BERT on CPU — contributions and speedups",
        &["subgraph", "exec-time contribution", "speedup"],
    );
    for r in &s.rows {
        t.row(vec![
            r.subgraph.clone(),
            format!("{:.1}%", r.contribution * 100.0),
            fx(r.speedup),
        ]);
    }
    t.row(vec![
        "Estimated HARL (sum)".into(),
        "100%".into(),
        fx(s.estimated_speedup),
    ]);
    t.row(vec![
        "Measured HARL".into(),
        "-".into(),
        fx(s.measured_speedup),
    ]);
    t.row(vec![
        "Measured HARL (w/o subgraph MAB)".into(),
        "-".into(),
        fx(s.measured_speedup_no_mab),
    ]);
    t.render()
}

pub fn render_fig10(s: &BertStudy, names: &[String]) -> String {
    let mut t = Table::new(
        "Fig 10: BERT subgraph trial allocations ('=Ansor' | '>Ansor')",
        &[
            "subgraph",
            "HARL =Ansor",
            "HARL >Ansor",
            "no-MAB =Ansor",
            "no-MAB >Ansor",
        ],
    );
    for (i, name) in names.iter().enumerate() {
        let (mu, mt) = s.alloc_mab[i];
        let (nu, nt) = s.alloc_no_mab[i];
        t.row(vec![
            name.clone(),
            mu.to_string(),
            (mt - mu).to_string(),
            nu.to_string(),
            (nt - nu).to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::tiny()
    }

    #[test]
    fn net_pair_runs() {
        let p = run_net_pair(&tiny(), Network::Bert, &Hardware::cpu(), 1);
        assert!(p.ansor_latency.is_finite() && p.harl_latency.is_finite());
        assert!(p.perf_ratio() > 0.0);
    }

    #[test]
    fn bert_study_shapes() {
        let s = bert_study(&tiny());
        assert_eq!(s.rows.len(), 10);
        let total: f64 = s.rows.iter().map(|r| r.contribution).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "contributions sum to 1, got {total}"
        );
        assert!(s.estimated_speedup > 0.0);
        // communication overhead pulls the measured ratio toward 1
        let d_est = (s.estimated_speedup - 1.0).abs();
        let d_meas = (s.measured_speedup - 1.0).abs();
        assert!(d_meas <= d_est + 1e-9);
        assert_eq!(s.alloc_mab.len(), 10);
        for &(upto, total) in s.alloc_mab.iter().chain(&s.alloc_no_mab) {
            assert!(upto <= total);
        }
    }

    #[test]
    fn allocation_split_is_consistent() {
        let rounds = vec![(0usize, 10u64), (1, 20), (0, 35), (1, 50)];
        let split = allocations_split(&rounds, 2, 20);
        assert_eq!(split, vec![(10, 25), (10, 25)]);
    }
}
