//! Ablations of the reproduction's own design choices (beyond the paper's
//! Figures 7/10): elite track seeding, actor proposal count, and the
//! bandit algorithm used for sketch selection. DESIGN.md §5 calls these
//! out as the knobs a downstream user may want to revisit.

use serde::Serialize;

use harl_bandit::BanditKind;
use harl_core::{HarlConfig, HarlOperatorTuner};
use harl_nn_models::operators::{operator_suite, OperatorClass};
use harl_tensor_sim::{Hardware, MeasureConfig, Measurer};

use crate::report::{f3, Table};
use crate::scale::Scale;

/// One ablation variant's outcome.
#[derive(Debug, Serialize)]
pub struct AblationRow {
    pub variant: String,
    /// Best execution time found (seconds).
    pub best_time: f64,
    /// Normalized performance (best across the sweep = 1.0).
    pub normalized_performance: f64,
    /// Trials needed to reach the final best.
    pub trials_to_best: u64,
}

/// One sweep (a group of variants over the same workload/budget).
#[derive(Debug, Serialize)]
pub struct AblationSweep {
    pub name: String,
    pub rows: Vec<AblationRow>,
}

fn run_variant(scale: &Scale, cfg: HarlConfig, label: &str) -> (String, f64, u64) {
    let g = operator_suite(OperatorClass::GemmM, 1)
        .into_iter()
        .next()
        .expect("suite non-empty");
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(g, &m, cfg);
    t.tune(scale.op_trials);
    let trials_to_best = t
        .trace
        .first_reaching(t.best_time * 1.0001)
        .map(|(trials, _)| trials)
        .unwrap_or(t.trials_used);
    (label.to_string(), t.best_time, trials_to_best)
}

fn finish(name: &str, raw: Vec<(String, f64, u64)>) -> AblationSweep {
    let best = raw.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    AblationSweep {
        name: name.to_string(),
        rows: raw
            .into_iter()
            .map(|(variant, time, trials)| AblationRow {
                variant,
                best_time: time,
                normalized_performance: best / time,
                trials_to_best: trials,
            })
            .collect(),
    }
}

/// Sweep the elite-track warm-start fraction.
pub fn ablate_elite_fraction(scale: &Scale) -> AblationSweep {
    let base = scale.harl_config();
    let raw = [0.0, 0.25, 0.5, 0.75]
        .into_iter()
        .map(|f| {
            run_variant(
                scale,
                HarlConfig {
                    elite_track_fraction: f,
                    ..base.clone()
                },
                &format!("elite_fraction={f}"),
            )
        })
        .collect();
    finish("elite track fraction", raw)
}

/// Sweep the number of actor proposals the cost model prunes per step.
pub fn ablate_action_samples(scale: &Scale) -> AblationSweep {
    let base = scale.harl_config();
    let raw = [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| {
            run_variant(
                scale,
                HarlConfig {
                    action_samples: n,
                    ..base.clone()
                },
                &format!("action_samples={n}"),
            )
        })
        .collect();
    finish("actor proposals per step", raw)
}

/// Sweep the bandit algorithm behind sketch selection.
pub fn ablate_bandit_kind(scale: &Scale) -> AblationSweep {
    let base = scale.harl_config();
    let kinds: [(&str, BanditKind); 4] = [
        ("SW-UCB (paper)", BanditKind::paper_default()),
        (
            "D-UCB",
            BanditKind::DUcb {
                c: 0.25,
                gamma: 0.99,
            },
        ),
        ("Thompson", BanditKind::Thompson { gamma: 0.99 }),
        ("Uniform (Ansor)", BanditKind::Uniform),
    ];
    let raw = kinds
        .into_iter()
        .map(|(label, kind)| {
            run_variant(
                scale,
                HarlConfig {
                    mab_kind: kind,
                    ..base.clone()
                },
                label,
            )
        })
        .collect();
    finish("sketch-selection bandit", raw)
}

pub fn render_sweep(s: &AblationSweep) -> String {
    let mut t = Table::new(
        format!("Ablation: {}", s.name),
        &[
            "variant",
            "best time (ms)",
            "normalized perf",
            "trials to best",
        ],
    );
    for r in &s.rows {
        t.row(vec![
            r.variant.clone(),
            format!("{:.3}", r.best_time * 1e3),
            f3(r.normalized_performance),
            r.trials_to_best.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_normalized_rows() {
        let scale = Scale::tiny();
        for sweep in [ablate_elite_fraction(&scale), ablate_bandit_kind(&scale)] {
            assert!(sweep.rows.len() >= 4);
            let maxp = sweep
                .rows
                .iter()
                .map(|r| r.normalized_performance)
                .fold(0.0f64, f64::max);
            assert!((maxp - 1.0).abs() < 1e-9, "{}: max {maxp}", sweep.name);
            assert!(!render_sweep(&sweep).is_empty());
        }
    }

    #[test]
    fn action_sample_sweep_runs() {
        let scale = Scale::tiny();
        let s = ablate_action_samples(&scale);
        assert_eq!(s.rows.len(), 4);
        assert!(s.rows.iter().all(|r| r.best_time.is_finite()));
    }
}
