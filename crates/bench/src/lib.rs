//! # harl-bench
//!
//! The experiment harness: one function per figure/table of the paper's
//! evaluation (§2.2 Observations, §6.2 operators, §6.3 networks, Appendix
//! A.4 sensitivity), each returning serializable results with a text
//! renderer. The `experiments` binary dispatches them; DESIGN.md maps each
//! experiment to its implementing modules.

pub mod ablation;
pub mod fig1;
pub mod networks;
pub mod operators;
pub mod report;
pub mod scale;

pub use report::{geomean, save_json, Table};
pub use scale::Scale;
