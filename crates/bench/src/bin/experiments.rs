//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! experiments [EXPERIMENTS...] [--paper] [--trials N] [--net-trials N]
//!             [--seed S] [--out DIR]
//!
//! EXPERIMENTS: fig1a fig1b fig1c fig5 fig6 fig7a fig7b fig8 fig9 fig10
//!              table4 table7 table8 all      (default: all)
//! --paper       paper-scale budgets (1000 trials/operator, 12k-22k/network)
//! --trials N    override trials per operator run
//! --net-trials N  override trials per network run
//! --seed S      RNG seed (default 2026)
//! --out DIR     JSON output directory (default results/)
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use harl_bench::scale::Scale;
use harl_bench::{ablation, fig1, networks, operators, save_json};
use harl_nn_models::bert;
use harl_tensor_sim::Hardware;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::fast();
    let mut out_dir = PathBuf::from("results");
    let mut wanted: BTreeSet<String> = BTreeSet::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => scale = Scale::paper(),
            "--trials" => {
                i += 1;
                scale.op_trials = args[i].parse().expect("--trials N");
            }
            "--net-trials" => {
                i += 1;
                scale.net_trials = Some(args[i].parse().expect("--net-trials N"));
            }
            "--seed" => {
                i += 1;
                scale.seed = args[i].parse().expect("--seed S");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(&args[i]);
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            other => {
                wanted.insert(other.to_string());
            }
        }
        i += 1;
    }
    if wanted.is_empty() || wanted.contains("all") {
        for e in [
            "fig1a", "fig1b", "fig1c", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10",
            "table4", "table7", "table8", "ablation",
        ] {
            wanted.insert(e.to_string());
        }
    }

    eprintln!(
        "# scale: {} ({} trials/op, {:?} trials/net, {} shapes/class, batches {:?}, seed {})",
        if scale.paper { "paper" } else { "fast" },
        scale.op_trials,
        scale.net_trials,
        scale.shapes_per_class,
        scale.batches,
        scale.seed
    );

    let cpu = Hardware::cpu();

    if wanted.contains("fig1a") {
        eprintln!("# running fig1a (Ansor greedy allocation on BERT)...");
        let r = fig1::fig1a(&scale);
        println!("{}", fig1::render_fig1a(&r));
        let _ = save_json(&out_dir, "fig1a", &r);
    }
    if wanted.contains("fig1b") {
        eprintln!("# running fig1b (uniform schedule-selection improvements)...");
        let r = fig1::fig1b(&scale);
        println!("{}", fig1::render_fig1b(&r));
        let _ = save_json(&out_dir, "fig1b", &r);
    }
    if wanted.contains("fig1c") {
        eprintln!("# running fig1c (fixed-length critical steps)...");
        let r = fig1::fig1c(&scale);
        println!("{}", fig1::render_fig1c(&r));
        let _ = save_json(&out_dir, "fig1c", &r);
    }

    if wanted.contains("fig5") || wanted.contains("fig6") {
        eprintln!("# running fig5+fig6 (operator comparison, this is the long one)...");
        let r = operators::operator_comparison(&scale, &cpu);
        if wanted.contains("fig5") {
            println!("{}", operators::render_fig5(&r));
        }
        if wanted.contains("fig6") {
            println!("{}", operators::render_fig6(&r));
        }
        let _ = save_json(&out_dir, "fig5_fig6", &r);
    }

    if wanted.contains("fig7a") || wanted.contains("fig7b") {
        eprintln!("# running fig7 (ablation on GEMM-L)...");
        let (a, b) = operators::fig7a(&scale, &cpu);
        if wanted.contains("fig7a") {
            println!("{}", operators::render_fig7a(&a));
        }
        if wanted.contains("fig7b") {
            println!("{}", operators::render_fig7b(&b));
        }
        let _ = save_json(&out_dir, "fig7a", &a);
        let _ = save_json(&out_dir, "fig7b", &b);
    }

    if wanted.contains("fig8") || wanted.contains("fig9") {
        eprintln!("# running fig8+fig9 (network comparison: 3 nets x CPU/GPU)...");
        let r = networks::network_comparison(&scale);
        if wanted.contains("fig8") {
            println!("{}", networks::render_fig8(&r));
        }
        if wanted.contains("fig9") {
            println!("{}", networks::render_fig9(&r));
        }
        let _ = save_json(&out_dir, "fig8_fig9", &r);
    }

    if wanted.contains("fig10") || wanted.contains("table4") {
        eprintln!("# running fig10+table4 (BERT study with subgraph-MAB ablation)...");
        let r = networks::bert_study(&scale);
        if wanted.contains("table4") {
            println!("{}", networks::render_table4(&r));
        }
        if wanted.contains("fig10") {
            let names: Vec<String> = bert(1).iter().map(|g| g.name.clone()).collect();
            println!("{}", networks::render_fig10(&r, &names));
        }
        let _ = save_json(&out_dir, "table4_fig10", &r);
    }

    if wanted.contains("table7") {
        eprintln!("# running table7 (lambda sensitivity)...");
        let r = operators::table7(&scale, &cpu);
        println!(
            "{}",
            operators::render_sensitivity(&r, "Table 7: adaptive-stopping window size λ")
        );
        let _ = save_json(&out_dir, "table7", &r);
    }
    if wanted.contains("table8") {
        eprintln!("# running table8 (rho sensitivity)...");
        let r = operators::table8(&scale, &cpu);
        println!(
            "{}",
            operators::render_sensitivity(&r, "Table 8: adaptive-stopping elimination ratio ρ")
        );
        let _ = save_json(&out_dir, "table8", &r);
    }
    if wanted.contains("ablation") {
        eprintln!("# running ablation sweeps (elite fraction / proposals / bandit kind)...");
        let sweeps = vec![
            ablation::ablate_elite_fraction(&scale),
            ablation::ablate_action_samples(&scale),
            ablation::ablate_bandit_kind(&scale),
        ];
        for s in &sweeps {
            println!("{}", ablation::render_sweep(s));
        }
        let _ = save_json(&out_dir, "ablation", &sweeps);
    }
    eprintln!("# done; JSON results in {}", out_dir.display());
}

const HELP: &str = "\
experiments — regenerate the HARL paper's figures and tables

USAGE:
  experiments [EXPERIMENTS...] [--paper] [--trials N] [--net-trials N]
              [--seed S] [--out DIR]

EXPERIMENTS (default: all)
  fig1a fig1b fig1c   motivating observations (Section 2.2)
  fig5 fig6           tensor-operator performance / search time (Section 6.2)
  fig7a fig7b         hierarchical-RL + adaptive-stopping ablation
  fig8 fig9           end-to-end networks, CPU and GPU (Section 6.3)
  fig10 table4        BERT subgraph study with subgraph-MAB ablation
  table7 table8       lambda / rho sensitivity (Appendix A.4)
  ablation            reproduction design-choice sweeps (DESIGN.md section 5)
";
