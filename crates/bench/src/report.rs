//! Plain-text table rendering and JSON result persistence.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with column widths fitted to content.
    pub fn render(&self) -> String {
        let ncol = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let c = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!(" {c:<w$} |"));
            }
            out.push_str(&s);
            out.push('\n');
        };
        line(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Formats a ratio like `1.23x`.
pub fn fx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a normalized value with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Geometric mean of positive values (ignores non-finite entries).
pub fn geomean(vals: &[f64]) -> f64 {
    let logs: Vec<f64> = vals
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Writes a serializable result to `results/<name>.json` under `out_dir`.
pub fn save_json<T: serde::Serialize>(
    out_dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<()> {
    fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}.json"));
    fs::write(path, serde_json::to_string_pretty(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_fitted_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.0".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a-much-longer-name"));
        let widths: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "uniform row widths: {s}"
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
        assert!((geomean(&[1.0, f64::INFINITY, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn save_json_roundtrip() {
        let dir = std::env::temp_dir().join("harl_report_test");
        save_json(&dir, "t", &vec![1, 2, 3]).unwrap();
        let s = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(s.contains('2'));
    }
}
