//! Tensor-operator experiments: Figures 5–7 and the sensitivity Tables 7–8.

use serde::Serialize;

use harl_ansor::{AnsorConfig, AnsorTuner};
use harl_core::{critical_step_histogram, HarlConfig, HarlOperatorTuner};
use harl_nn_models::operators::{operator_suite, OperatorClass};
use harl_tensor_ir::Subgraph;
use harl_tensor_sim::{Hardware, MeasureConfig, Measurer, TuneTrace};

use crate::report::{f3, fx, geomean, pct, Table};
use crate::scale::Scale;

/// One Ansor-vs-HARL run on a single workload.
#[derive(Debug, Serialize)]
pub struct PairResult {
    pub workload: String,
    pub batch: u32,
    /// Best execution times (noise-free), seconds.
    pub ansor_best: f64,
    pub harl_best: f64,
    /// Total simulated search seconds each tuner used.
    pub ansor_seconds: f64,
    pub harl_seconds: f64,
    /// Simulated seconds HARL needed to reach Ansor's final best
    /// (`None` when it never got there).
    pub harl_seconds_to_ansor: Option<f64>,
    pub trials: u64,
}

impl PairResult {
    /// Performance ratio HARL/Ansor (>1 = HARL wins); performance is 1/time.
    pub fn perf_ratio(&self) -> f64 {
        self.ansor_best / self.harl_best
    }

    /// Normalized search time: HARL's time-to-Ansor-final over Ansor's
    /// total search time (the Fig. 6 metric; 1.0 when HARL never reaches).
    pub fn search_time_ratio(&self) -> f64 {
        match self.harl_seconds_to_ansor {
            Some(t) => (t / self.ansor_seconds).min(1.0),
            None => 1.0,
        }
    }
}

/// Runs Ansor and HARL on one workload with identical budgets.
pub fn run_pair(
    graph: &Subgraph,
    hw: &Hardware,
    trials: u64,
    ansor_cfg: AnsorConfig,
    harl_cfg: HarlConfig,
) -> PairResult {
    let batch = 1; // recorded by caller when meaningful
    let ansor_m = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut ansor = AnsorTuner::new(graph.clone(), &ansor_m, ansor_cfg);
    ansor.tune(trials);

    let harl_m = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut harl = HarlOperatorTuner::new(graph.clone(), &harl_m, harl_cfg);
    harl.tune(trials);

    let harl_seconds_to_ansor = harl.trace.first_reaching(ansor.best_time).map(|(_, s)| s);
    PairResult {
        workload: graph.name.clone(),
        batch,
        ansor_best: ansor.best_time,
        harl_best: harl.best_time,
        ansor_seconds: ansor.trace.total_seconds(),
        harl_seconds: harl.trace.total_seconds(),
        harl_seconds_to_ansor,
        trials,
    }
}

/// Figures 5 and 6: per-class normalized performance and search time.
#[derive(Debug, Serialize)]
pub struct OperatorComparison {
    pub classes: Vec<ClassResult>,
}

#[derive(Debug, Serialize)]
pub struct ClassResult {
    pub class: String,
    pub runs: Vec<PairResult>,
    /// Geomean HARL/Ansor performance ratio.
    pub perf_ratio: f64,
    /// Geomean normalized search time (HARL time to reach Ansor's best /
    /// Ansor total; Ansor ≡ 1.0).
    pub search_time: f64,
}

pub fn operator_comparison(scale: &Scale, hw: &Hardware) -> OperatorComparison {
    // collect all independent runs, then fan out over threads
    struct Job {
        class_idx: usize,
        graph: Subgraph,
        batch: u32,
        shape_idx: usize,
    }
    let mut jobs = Vec::new();
    for (class_idx, class) in OperatorClass::ALL.iter().enumerate() {
        for &batch in &scale.batches {
            for (shape_idx, graph) in operator_suite(*class, batch)
                .into_iter()
                .take(scale.shapes_per_class)
                .enumerate()
            {
                jobs.push(Job {
                    class_idx,
                    graph,
                    batch,
                    shape_idx,
                });
            }
        }
    }

    let mut results: Vec<Option<(usize, PairResult)>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = jobs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (job_chunk, out_chunk) in jobs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (job, slot) in job_chunk.iter().zip(out_chunk.iter_mut()) {
                    let mut ac = scale.ansor_config();
                    ac.seed ^= (job.shape_idx as u64) << 16 | (job.batch as u64) << 24;
                    let mut hc = scale.harl_config();
                    hc.seed ^= (job.shape_idx as u64) << 16 | (job.batch as u64) << 24;
                    let mut r = run_pair(&job.graph, hw, scale.op_trials, ac, hc);
                    r.batch = job.batch;
                    *slot = Some((job.class_idx, r));
                }
            });
        }
    });

    let mut classes: Vec<ClassResult> = OperatorClass::ALL
        .iter()
        .map(|c| ClassResult {
            class: c.name().to_string(),
            runs: Vec::new(),
            perf_ratio: f64::NAN,
            search_time: f64::NAN,
        })
        .collect();
    for r in results.into_iter().flatten() {
        classes[r.0].runs.push(r.1);
    }
    for cl in &mut classes {
        cl.perf_ratio = geomean(
            &cl.runs
                .iter()
                .map(PairResult::perf_ratio)
                .collect::<Vec<_>>(),
        );
        cl.search_time = geomean(
            &cl.runs
                .iter()
                .map(PairResult::search_time_ratio)
                .collect::<Vec<_>>(),
        );
    }
    OperatorComparison { classes }
}

/// Fig. 5 view: normalized performance per class (Ansor vs HARL).
pub fn render_fig5(c: &OperatorComparison) -> String {
    let mut t = Table::new(
        "Fig 5: normalized performance (1/exec-time, best-of-pair = 1.0)",
        &["operator", "Ansor", "HARL", "HARL/Ansor"],
    );
    for cl in &c.classes {
        let (a, h) = if cl.perf_ratio >= 1.0 {
            (1.0 / cl.perf_ratio, 1.0)
        } else {
            (1.0, cl.perf_ratio)
        };
        t.row(vec![cl.class.clone(), f3(a), f3(h), fx(cl.perf_ratio)]);
    }
    let overall = geomean(&c.classes.iter().map(|c| c.perf_ratio).collect::<Vec<_>>());
    format!(
        "{}\noverall HARL/Ansor performance: {}\n",
        t.render(),
        fx(overall)
    )
}

/// Fig. 6 view: normalized search time per class.
pub fn render_fig6(c: &OperatorComparison) -> String {
    let mut t = Table::new(
        "Fig 6: normalized search time to reach Ansor's final performance",
        &["operator", "Ansor", "HARL", "speedup"],
    );
    for cl in &c.classes {
        let sp = if cl.search_time > 0.0 {
            1.0 / cl.search_time
        } else {
            f64::INFINITY
        };
        t.row(vec![cl.class.clone(), f3(1.0), f3(cl.search_time), fx(sp)]);
    }
    let overall = geomean(&c.classes.iter().map(|c| c.search_time).collect::<Vec<_>>());
    format!(
        "{}\noverall HARL search time: {} of Ansor ({} faster)\n",
        t.render(),
        f3(overall),
        fx(1.0 / overall)
    )
}

/// Fig. 7(a): ablation convergence curves on GEMM-L 1024³.
#[derive(Debug, Serialize)]
pub struct Fig7a {
    /// `(trials, normalized best performance)` checkpoints per variant.
    pub ansor: Vec<(u64, f64)>,
    pub hierarchical_rl: Vec<(u64, f64)>,
    pub harl: Vec<(u64, f64)>,
}

fn normalize_curve(trace: &TuneTrace, best: f64) -> Vec<(u64, f64)> {
    trace
        .points
        .iter()
        .map(|p| (p.trials, best / p.best_time))
        .collect()
}

pub fn fig7a(scale: &Scale, hw: &Hardware) -> (Fig7a, Fig7b) {
    let g = operator_suite(OperatorClass::GemmL, 1)
        .into_iter()
        .next()
        .expect("GEMM-L suite non-empty"); // 1024x1024x1024

    let am = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut ansor = AnsorTuner::new(g.clone(), &am, scale.ansor_config());
    ansor.tune(scale.op_trials);

    let fm = Measurer::new(hw.clone(), MeasureConfig::default());
    let fixed_cfg = HarlConfig {
        adaptive_stopping: false,
        ..scale.harl_config()
    };
    let mut fixed = HarlOperatorTuner::new(g.clone(), &fm, fixed_cfg);
    fixed.tune(scale.op_trials);

    let hm = Measurer::new(hw.clone(), MeasureConfig::default());
    let mut harl = HarlOperatorTuner::new(g.clone(), &hm, scale.harl_config());
    harl.tune(scale.op_trials);

    let best = ansor.best_time.min(fixed.best_time).min(harl.best_time);
    let f7a = Fig7a {
        ansor: normalize_curve(&ansor.trace, best),
        hierarchical_rl: normalize_curve(&fixed.trace, best),
        harl: normalize_curve(&harl.trace, best),
    };
    let f7b = Fig7b {
        fixed_histogram: critical_step_histogram(&fixed.critical_steps, 10),
        adaptive_histogram: critical_step_histogram(&harl.critical_steps, 10),
        fixed_last10: last_bin_fraction(&fixed.critical_steps),
        adaptive_last10: last_bin_fraction(&harl.critical_steps),
    };
    (f7a, f7b)
}

fn last_bin_fraction(steps: &[harl_core::CriticalStep]) -> f64 {
    if steps.is_empty() {
        return 0.0;
    }
    steps.iter().filter(|s| s.relative() >= 0.9).count() as f64 / steps.len() as f64
}

pub fn render_fig7a(r: &Fig7a) -> String {
    let mut t = Table::new(
        "Fig 7(a): GEMM-L convergence (normalized best performance)",
        &["trials", "Ansor", "Hierarchical-RL", "HARL"],
    );
    let at = |c: &[(u64, f64)], trials: u64| -> f64 {
        c.iter()
            .take_while(|(t, _)| *t <= trials)
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    };
    let max_trials = r
        .ansor
        .last()
        .map(|p| p.0)
        .unwrap_or(0)
        .max(r.harl.last().map(|p| p.0).unwrap_or(0));
    let steps = 8u64;
    for i in 1..=steps {
        let trials = max_trials * i / steps;
        t.row(vec![
            trials.to_string(),
            f3(at(&r.ansor, trials)),
            f3(at(&r.hierarchical_rl, trials)),
            f3(at(&r.harl, trials)),
        ]);
    }
    t.render()
}

/// Fig. 7(b): critical-step histograms, fixed vs adaptive.
#[derive(Debug, Serialize)]
pub struct Fig7b {
    pub fixed_histogram: Vec<u64>,
    pub adaptive_histogram: Vec<u64>,
    pub fixed_last10: f64,
    pub adaptive_last10: f64,
}

pub fn render_fig7b(r: &Fig7b) -> String {
    let mut t = Table::new(
        "Fig 7(b): critical-step position histogram (10 bins)",
        &["bin", "fixed-length", "adaptive-stopping"],
    );
    for i in 0..10 {
        t.row(vec![
            format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            r.fixed_histogram[i].to_string(),
            r.adaptive_histogram[i].to_string(),
        ]);
    }
    format!(
        "{}\ncritical steps in last 10% of track: fixed {} vs adaptive {}\n",
        t.render(),
        pct(r.fixed_last10),
        pct(r.adaptive_last10)
    )
}

/// Tables 7 and 8: sensitivity of λ and ρ on 1024³ GEMM.
#[derive(Debug, Serialize)]
pub struct SensitivityRow {
    pub value: f64,
    pub normalized_performance: f64,
    pub normalized_time_per_iteration: f64,
}

#[derive(Debug, Serialize)]
pub struct Sensitivity {
    pub parameter: String,
    pub rows: Vec<SensitivityRow>,
}

fn sensitivity_run(
    scale: &Scale,
    hw: &Hardware,
    cfgs: Vec<(f64, HarlConfig)>,
    name: &str,
) -> Sensitivity {
    let g = operator_suite(OperatorClass::GemmL, 1)
        .into_iter()
        .next()
        .expect("GEMM-L suite non-empty");
    let mut raw = Vec::new();
    for (value, cfg) in cfgs {
        let m = Measurer::new(hw.clone(), MeasureConfig::default());
        let mut t = HarlOperatorTuner::new(g.clone(), &m, cfg);
        t.tune(scale.op_trials);
        let iters = t.rounds.len().max(1) as f64;
        raw.push((value, 1.0 / t.best_time, m.sim_seconds() / iters));
    }
    let max_perf = raw.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let max_tpi = raw.iter().map(|r| r.2).fold(0.0f64, f64::max);
    Sensitivity {
        parameter: name.to_string(),
        rows: raw
            .into_iter()
            .map(|(value, perf, tpi)| SensitivityRow {
                value,
                normalized_performance: perf / max_perf,
                normalized_time_per_iteration: tpi / max_tpi,
            })
            .collect(),
    }
}

/// Table 7: λ ∈ {10, 20, 40, 80} (fast scale uses the same ratios on a
/// smaller λ base so episodes stay proportionate to the track count).
pub fn table7(scale: &Scale, hw: &Hardware) -> Sensitivity {
    let base = scale.harl_config();
    let lambdas: Vec<usize> = if scale.paper {
        vec![10, 20, 40, 80]
    } else {
        vec![3, 5, 10, 20]
    };
    let cfgs = lambdas
        .into_iter()
        .map(|l| {
            (
                l as f64,
                HarlConfig {
                    lambda: l,
                    ..base.clone()
                },
            )
        })
        .collect();
    sensitivity_run(scale, hw, cfgs, "lambda")
}

/// Table 8: ρ ∈ {0.75, 0.5, 0.25}.
pub fn table8(scale: &Scale, hw: &Hardware) -> Sensitivity {
    let base = scale.harl_config();
    let cfgs = [0.75, 0.5, 0.25]
        .into_iter()
        .map(|r| {
            (
                r,
                HarlConfig {
                    rho: r,
                    ..base.clone()
                },
            )
        })
        .collect();
    sensitivity_run(scale, hw, cfgs, "rho")
}

pub fn render_sensitivity(s: &Sensitivity, title: &str) -> String {
    let mut t = Table::new(
        title,
        &[
            &s.parameter,
            "Normalized Performance",
            "Normalized Time/Iteration",
        ],
    );
    for r in &s.rows {
        t.row(vec![
            format!("{}", r.value),
            f3(r.normalized_performance),
            f3(r.normalized_time_per_iteration),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::tiny()
    }

    #[test]
    fn pair_run_produces_consistent_metrics() {
        let scale = tiny();
        let g = operator_suite(OperatorClass::GemmS, 1).remove(0);
        let r = run_pair(
            &g,
            &Hardware::cpu(),
            scale.op_trials,
            scale.ansor_config(),
            scale.harl_config(),
        );
        assert!(r.ansor_best.is_finite() && r.harl_best.is_finite());
        assert!(r.perf_ratio() > 0.0);
        assert!((0.0..=1.0).contains(&r.search_time_ratio()));
    }

    #[test]
    fn fig7_runs_and_renders() {
        let (a, b) = fig7a(&tiny(), &Hardware::cpu());
        assert!(!a.harl.is_empty());
        assert_eq!(b.fixed_histogram.len(), 10);
        assert!(!render_fig7a(&a).is_empty());
        assert!(!render_fig7b(&b).is_empty());
    }

    #[test]
    fn sensitivity_normalizes_to_one() {
        let s = table8(&tiny(), &Hardware::cpu());
        assert_eq!(s.rows.len(), 3);
        let maxp = s
            .rows
            .iter()
            .map(|r| r.normalized_performance)
            .fold(0.0f64, f64::max);
        assert!((maxp - 1.0).abs() < 1e-9);
        let maxt = s
            .rows
            .iter()
            .map(|r| r.normalized_time_per_iteration)
            .fold(0.0f64, f64::max);
        assert!((maxt - 1.0).abs() < 1e-9);
    }
}
