//! Experiment scaling: paper-scale settings vs. fast defaults.
//!
//! The paper runs 1000 measurement trials per operator and 12k–22k per
//! network on a real testbed. Our simulator makes each trial cheap, but the
//! cost model / RL training still dominates wall-clock, so the default
//! scale trims trial counts and shape counts while keeping every algorithm
//! identical. `--paper` restores the published scale.

use harl_ansor::{AnsorConfig, EvoConfig};
use harl_core::HarlConfig;
use harl_gbt::GbtParams;

/// Scale knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Trials per tensor-operator tuning run (paper: 1000).
    pub op_trials: u64,
    /// Shapes per operator class (paper: 4 — Table 6).
    pub shapes_per_class: usize,
    /// Batch sizes (paper: 1 and 16).
    pub batches: Vec<u32>,
    /// Trials per network run; `None` uses the paper's per-network budget.
    pub net_trials: Option<u64>,
    /// When `net_trials` is `None` and this is set, the budget is
    /// `tasks × net_trials_per_task` (keeps fast runs meaningful for
    /// networks with many subgraphs).
    pub net_trials_per_task: Option<u64>,
    /// Programs sampled for Fig. 1(b) (paper: 200).
    pub fig1b_programs: usize,
    /// Mutations per program for Fig. 1(b) (paper: 20).
    pub fig1b_mutations: usize,
    /// Measurement candidates per round for both schedulers.
    pub measure_per_round: usize,
    /// Whether this is the paper-scale configuration.
    pub paper: bool,
    pub seed: u64,
}

impl Scale {
    pub fn fast() -> Self {
        Scale {
            op_trials: 192,
            shapes_per_class: 2,
            batches: vec![1],
            net_trials: None,
            net_trials_per_task: Some(96),
            fig1b_programs: 60,
            fig1b_mutations: 20,
            measure_per_round: 16,
            paper: false,
            seed: 2026,
        }
    }

    /// Minimal scale for unit tests (tiny algorithm configs, few trials).
    pub fn tiny() -> Self {
        Scale {
            op_trials: 48,
            shapes_per_class: 1,
            batches: vec![1],
            net_trials: Some(200),
            net_trials_per_task: None,
            fig1b_programs: 10,
            fig1b_mutations: 5,
            measure_per_round: 8,
            paper: false,
            seed: 2026,
        }
    }

    pub fn paper() -> Self {
        Scale {
            op_trials: 1000,
            shapes_per_class: 4,
            batches: vec![1, 16],
            net_trials: None,
            net_trials_per_task: None,
            fig1b_programs: 200,
            fig1b_mutations: 20,
            measure_per_round: 64,
            paper: true,
            seed: 2026,
        }
    }

    /// Ansor configuration at this scale.
    pub fn ansor_config(&self) -> AnsorConfig {
        if self.paper {
            AnsorConfig {
                seed: self.seed,
                ..Default::default()
            }
        } else {
            AnsorConfig {
                measure_per_round: self.measure_per_round,
                evo: EvoConfig {
                    population: 128,
                    generations: 3,
                    ..Default::default()
                },
                gbt: GbtParams {
                    n_rounds: 12,
                    ..Default::default()
                },
                seed: self.seed,
                ..Default::default()
            }
        }
    }

    /// HARL configuration at this scale.
    pub fn harl_config(&self) -> HarlConfig {
        if self.paper {
            HarlConfig {
                seed: self.seed,
                ..HarlConfig::paper()
            }
        } else if self.measure_per_round <= 8 {
            HarlConfig {
                measure_per_round: self.measure_per_round,
                seed: self.seed,
                ..HarlConfig::tiny()
            }
        } else {
            HarlConfig {
                measure_per_round: self.measure_per_round,
                seed: self.seed,
                ..HarlConfig::fast()
            }
        }
    }

    /// Trial budget for a network run.
    pub fn net_budget(&self, net: harl_nn_models::Network) -> u64 {
        if let Some(n) = self.net_trials {
            return n;
        }
        if let Some(per_task) = self.net_trials_per_task {
            return per_task * net.subgraphs(1).len() as u64;
        }
        net.paper_trials()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section6() {
        let s = Scale::paper();
        assert_eq!(s.op_trials, 1000);
        assert_eq!(s.shapes_per_class, 4);
        assert_eq!(s.batches, vec![1, 16]);
        assert_eq!(s.net_budget(harl_nn_models::Network::Bert), 12_000);
        assert_eq!(s.measure_per_round, 64);
    }

    #[test]
    fn fast_scale_is_smaller() {
        let f = Scale::fast();
        let p = Scale::paper();
        assert!(f.op_trials < p.op_trials);
        assert!(f.net_budget(harl_nn_models::Network::Bert) < 12_000);
        // per-task scaling: ResNet-50 (24 tasks) gets a larger fast budget
        // than BERT (10 tasks)
        assert!(
            f.net_budget(harl_nn_models::Network::ResNet50)
                > f.net_budget(harl_nn_models::Network::Bert)
        );
    }
}
