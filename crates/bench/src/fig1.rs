//! Figure 1 — the motivating observations on current auto-schedulers.
//!
//! * **Fig. 1(a)**: greedy (Ansor) task allocation on BERT spends >35% of
//!   trials on the last 1% of improvement, concentrated on the most
//!   time-consuming subgraphs.
//! * **Fig. 1(b)**: uniform next-schedule selection produces improvement
//!   ratios clustered around zero.
//! * **Fig. 1(c)**: fixed-length (Flextensor) search paths find their best
//!   schedule early — most critical steps fall in the first 40%.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use harl_ansor::{AnsorNetworkTuner, FlextensorConfig, FlextensorTuner, GradientParams};
use harl_nn_models::{bert, operators};
use harl_tensor_ir::{generate_sketches, mutate, Schedule, Target};
use harl_tensor_sim::{Hardware, MeasureConfig, Measurer};

use crate::report::{pct, Table};
use crate::scale::Scale;

/// Fig. 1(a) result: per-subgraph trial allocation with the greedy task
/// scheduler, split at the last-1%-improvement point.
#[derive(Debug, Serialize)]
pub struct Fig1a {
    pub rows: Vec<Fig1aRow>,
    pub wasted_fraction: f64,
}

#[derive(Debug, Serialize)]
pub struct Fig1aRow {
    pub subgraph: String,
    pub total_trials: u64,
    pub trials_last_1pct: u64,
}

pub fn fig1a(scale: &Scale) -> Fig1a {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let subgraphs = bert(1);
    let names: Vec<String> = subgraphs.iter().map(|g| g.name.clone()).collect();
    let weights: Vec<f64> = subgraphs.iter().map(|g| g.weight).collect();
    let mut nt = AnsorNetworkTuner::new(
        subgraphs,
        &measurer,
        scale.ansor_config(),
        GradientParams::default(),
    );
    nt.tune(scale.net_budget(harl_nn_models::Network::Bert));

    let final_latency = nt.network_latency();
    // the round after which only the last 1% of improvement remains
    let threshold = final_latency * 1.01;
    let cut = nt
        .rounds
        .iter()
        .position(|r| r.latency <= threshold)
        .unwrap_or(nt.rounds.len().saturating_sub(1));

    let n = names.len();
    let mut total = vec![0u64; n];
    let mut late = vec![0u64; n];
    let mut prev = 0u64;
    for (i, r) in nt.rounds.iter().enumerate() {
        let used = r.trials_after - prev;
        prev = r.trials_after;
        total[r.task] += used;
        if i > cut {
            late[r.task] += used;
        }
    }

    // top-5 most time-consuming subgraphs (by weighted best time)
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ca = weights[a] * nt.states[a].best_time;
        let cb = weights[b] * nt.states[b].best_time;
        cb.partial_cmp(&ca).unwrap_or(std::cmp::Ordering::Equal)
    });

    let rows: Vec<Fig1aRow> = order
        .into_iter()
        .take(5)
        .map(|i| Fig1aRow {
            subgraph: names[i].clone(),
            total_trials: total[i],
            trials_last_1pct: late[i],
        })
        .collect();

    let all: u64 = total.iter().sum();
    let all_late: u64 = late.iter().sum();
    Fig1a {
        rows,
        wasted_fraction: if all > 0 {
            all_late as f64 / all as f64
        } else {
            0.0
        },
    }
}

pub fn render_fig1a(r: &Fig1a) -> String {
    let mut t = Table::new(
        "Fig 1(a): greedy trial allocation on top-5 BERT subgraphs",
        &["subgraph", "total trials", "trials for last 1%"],
    );
    for row in &r.rows {
        t.row(vec![
            row.subgraph.clone(),
            row.total_trials.to_string(),
            row.trials_last_1pct.to_string(),
        ]);
    }
    format!(
        "{}\ntrials spent on the last 1% of improvement: {}\n",
        t.render(),
        pct(r.wasted_fraction)
    )
}

/// Fig. 1(b) result: distribution of improvement ratios under uniform
/// next-schedule selection.
#[derive(Debug, Serialize)]
pub struct Fig1b {
    pub mean: f64,
    pub median: f64,
    pub p25: f64,
    pub p75: f64,
    /// Fraction of steps with |improvement| < 2%.
    pub near_zero_fraction: f64,
    /// 20-bin histogram over [-0.5, 0.5].
    pub histogram: Vec<u64>,
}

pub fn fig1b(scale: &Scale) -> Fig1b {
    let hw = Hardware::cpu();
    let g = operators::operator_suite(operators::OperatorClass::GemmM, 1)
        .into_iter()
        .next()
        .expect("gemm-m suite non-empty");
    let sketches = generate_sketches(&g, Target::Cpu);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x1b);

    let mut ratios: Vec<f64> = Vec::new();
    for _ in 0..scale.fig1b_programs {
        let sk = &sketches[0];
        let mut s = Schedule::random(sk, Target::Cpu, &mut rng);
        let mut t = hw.execution_time(&g, sk, &s);
        for _ in 0..scale.fig1b_mutations {
            let next = mutate(sk, Target::Cpu, &s, &mut rng);
            let tn = hw.execution_time(&g, sk, &next);
            // improvement ratio of performance (1/t)
            ratios.push((t - tn) / tn);
            s = next;
            t = tn;
        }
    }

    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| ratios[((ratios.len() - 1) as f64 * p) as usize];
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let near_zero = ratios.iter().filter(|r| r.abs() < 0.02).count() as f64 / ratios.len() as f64;
    let mut histogram = vec![0u64; 20];
    for &r in &ratios {
        let b = (((r + 0.5) / 1.0 * 20.0) as isize).clamp(0, 19) as usize;
        histogram[b] += 1;
    }
    Fig1b {
        mean,
        median: q(0.5),
        p25: q(0.25),
        p75: q(0.75),
        near_zero_fraction: near_zero,
        histogram,
    }
}

pub fn render_fig1b(r: &Fig1b) -> String {
    let mut t = Table::new(
        "Fig 1(b): improvement-ratio distribution under uniform selection",
        &["stat", "value"],
    );
    t.row(vec!["mean".into(), format!("{:+.4}", r.mean)]);
    t.row(vec!["median".into(), format!("{:+.4}", r.median)]);
    t.row(vec!["p25".into(), format!("{:+.4}", r.p25)]);
    t.row(vec!["p75".into(), format!("{:+.4}", r.p75)]);
    t.row(vec!["|ratio| < 2%".into(), pct(r.near_zero_fraction)]);
    let mut s = t.render();
    s.push_str("histogram over [-0.5, 0.5):\n");
    let max = r.histogram.iter().copied().max().unwrap_or(1).max(1);
    for (i, &h) in r.histogram.iter().enumerate() {
        let lo = -0.5 + i as f64 / 20.0;
        let bar = "#".repeat((h * 40 / max) as usize);
        s.push_str(&format!("{lo:+.2} | {bar} {h}\n"));
    }
    s
}

/// Fig. 1(c) result: histogram of relative critical-step positions on the
/// fixed-length (Flextensor) tuner.
#[derive(Debug, Serialize)]
pub struct Fig1c {
    /// 10-bin histogram of best-schedule positions / path length.
    pub histogram: Vec<u64>,
    /// Fraction of paths whose best was found in the first 40% of steps.
    pub early_fraction: f64,
}

pub fn fig1c(scale: &Scale) -> Fig1c {
    let mut all_steps = Vec::new();
    let gemms = operators::operator_suite(operators::OperatorClass::GemmM, 1);
    for (i, g) in gemms.into_iter().take(scale.shapes_per_class).enumerate() {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let cfg = FlextensorConfig {
            episode_len: 16,
            tracks: 8,
            seed: scale.seed ^ (i as u64) << 8,
            ..Default::default()
        };
        let mut t = FlextensorTuner::new(g, &measurer, cfg);
        t.tune(scale.op_trials);
        all_steps.extend(t.critical_steps.iter().map(|c| c.relative()));
    }
    let mut histogram = vec![0u64; 10];
    for &r in &all_steps {
        let b = ((r * 10.0) as usize).min(9);
        histogram[b] += 1;
    }
    let early =
        all_steps.iter().filter(|&&r| r <= 0.4).count() as f64 / all_steps.len().max(1) as f64;
    Fig1c {
        histogram,
        early_fraction: early,
    }
}

pub fn render_fig1c(r: &Fig1c) -> String {
    let mut s = String::from("== Fig 1(c): critical-step positions, fixed-length search ==\n");
    let max = r.histogram.iter().copied().max().unwrap_or(1).max(1);
    for (i, &h) in r.histogram.iter().enumerate() {
        let bar = "#".repeat((h * 40 / max) as usize);
        s.push_str(&format!(
            "{:.1}-{:.1} | {bar} {h}\n",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0
        ));
    }
    s.push_str(&format!(
        "best found within first 40% of path: {}\n",
        pct(r.early_fraction)
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            net_trials: Some(100),
            ..Scale::tiny()
        }
    }

    #[test]
    fn fig1a_produces_five_rows() {
        let r = fig1a(&tiny());
        assert_eq!(r.rows.len(), 5);
        assert!((0.0..=1.0).contains(&r.wasted_fraction));
        assert!(!render_fig1a(&r).is_empty());
    }

    #[test]
    fn fig1b_ratios_cluster_near_zero() {
        let r = fig1b(&tiny());
        assert_eq!(r.histogram.iter().sum::<u64>() as usize, 10 * 5);
        // the paper's point: the median improvement is ~0
        assert!(r.median.abs() < 0.25, "median {}", r.median);
        assert!(!render_fig1b(&r).is_empty());
    }

    #[test]
    fn fig1c_histogram_covers_all_paths() {
        let r = fig1c(&tiny());
        assert!(r.histogram.iter().sum::<u64>() > 0);
        assert!((0.0..=1.0).contains(&r.early_fraction));
        assert!(!render_fig1c(&r).is_empty());
    }
}
