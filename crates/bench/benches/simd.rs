//! SIMD-kernel benchmark: the scalar reference kernels vs the
//! runtime-dispatched backends in `harl-simd`, on the two hottest
//! consumers — the nnet GEMM (`gemm_bias_into`) and GBT batch scoring
//! (`CostModel::score_batch_into` over the flat tree-major kernel).
//!
//! Every backend is bit-identical to scalar by construction (vector lanes
//! run across independent output cells; per-cell accumulation order is
//! unchanged; FMA is never used) — the benchmark asserts bit-identity
//! before timing anything, so a speedup number is only ever reported for
//! math that produces the same bits.
//!
//! On hosts without AVX2/SSE2 the dispatched path degrades to scalar and
//! the speedup is ~1.0x; the bench gate skips the ratio check when the
//! reported backend is "scalar" (bit-identity is still enforced).
//!
//! `--list-backends` prints the backend table (supported + lanes) and the
//! auto-dispatched choice, then exits. `HARL_BENCH_SMOKE=1` shrinks the
//! workload for CI smoke runs; `HARL_BENCH_REPS` raises the rep count;
//! `HARL_BENCH_OUT` redirects the JSON report (default `BENCH_simd.json`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use harl_gbt::{CostModel, GbtParams};
use harl_simd::Backend;
use harl_tensor_ir::{extract_features, generate_sketches, workload, Schedule, Target};
use harl_tensor_sim::Hardware;

struct Workload {
    /// GEMM shape: `batch x in_dim -> batch x out_dim`.
    batch: usize,
    in_dim: usize,
    out_dim: usize,
    /// GEMM passes per timed rep.
    gemm_passes: usize,
    /// Rows per GBT scoring batch.
    rows: usize,
    /// Scoring passes per timed rep.
    score_passes: usize,
    reps: usize,
}

#[derive(Serialize)]
struct Report {
    /// Backend the dispatcher picked on this host (auto mode).
    backend: String,
    batch: usize,
    in_dim: usize,
    out_dim: usize,
    rows: usize,
    gemm_scalar_ms: f64,
    gemm_simd_ms: f64,
    gemm_speedup: f64,
    gbt_scalar_ms: f64,
    gbt_simd_ms: f64,
    gbt_speedup: f64,
    bit_identical: bool,
    smoke: bool,
}

fn run_gemm(x: &[f32], wt: &[f32], bias: &[f32], wl: &Workload, y: &mut Vec<f32>) {
    for _ in 0..wl.gemm_passes {
        harl_simd::gemm_bias_into(x, wt, bias, wl.batch, wl.in_dim, wl.out_dim, y);
        std::hint::black_box(&y[..]);
    }
}

fn run_score(cm: &CostModel, rows: &[Vec<f32>], passes: usize, out: &mut Vec<f64>) {
    for _ in 0..passes {
        cm.score_batch_into(rows, out);
        std::hint::black_box(&out[..]);
    }
}

fn bits_equal_f32(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn bits_equal_f64(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    median_ms(samples)
}

fn main() {
    if std::env::args().any(|a| a == "--list-backends") {
        println!("backend  lanes  supported");
        for b in Backend::ALL {
            println!(
                "{:<8} {:<6} {}",
                b.name(),
                b.lanes(),
                if b.is_supported() { "yes" } else { "no" }
            );
        }
        println!("dispatched: {}", harl_simd::backend_name());
        return;
    }

    let smoke = std::env::var("HARL_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut wl = if smoke {
        Workload {
            batch: 32,
            in_dim: 64,
            out_dim: 64,
            gemm_passes: 8,
            rows: 64,
            score_passes: 2,
            reps: 2,
        }
    } else {
        Workload {
            batch: 256,
            in_dim: 256,
            out_dim: 256,
            gemm_passes: 64,
            rows: 1024,
            score_passes: 16,
            reps: 5,
        }
    };
    if let Ok(reps) = std::env::var("HARL_BENCH_REPS") {
        if let Ok(r) = reps.trim().parse::<usize>() {
            wl.reps = r.max(1);
        }
    }

    let mut rng = StdRng::seed_from_u64(42);

    // --- GEMM workload (nnet forward-pass shape, scaled up) --------------
    let x: Vec<f32> = (0..wl.batch * wl.in_dim)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let wt: Vec<f32> = (0..wl.in_dim * wl.out_dim)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let bias: Vec<f32> = (0..wl.out_dim)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();

    // --- GBT workload (trained cost model + feature batch) ---------------
    let g = workload::gemm(512, 512, 512);
    let sketches = generate_sketches(&g, Target::Cpu);
    let sk = &sketches[0];
    let cpu = Hardware::cpu();
    let mut cm = CostModel::new(GbtParams::default());
    let train: Vec<(Vec<f32>, f64)> = (0..256)
        .map(|_| {
            let s = Schedule::random(sk, Target::Cpu, &mut rng);
            let f = extract_features(&g, sk, Target::Cpu, &s);
            let y = g.flops() / cpu.execution_time(&g, sk, &s);
            (f, y)
        })
        .collect();
    cm.update_batch(train);
    assert!(cm.is_trained(), "benchmark needs a trained model");
    let rows: Vec<Vec<f32>> = (0..wl.rows)
        .map(|_| {
            let s = Schedule::random(sk, Target::Cpu, &mut rng);
            extract_features(&g, sk, Target::Cpu, &s)
        })
        .collect();

    // --- bit-identity check outside the timed region ---------------------
    // (also serves as warm-up for both paths)
    let mut y_scalar = Vec::new();
    let mut y_simd = Vec::new();
    let mut s_scalar = Vec::new();
    let mut s_simd = Vec::new();
    harl_simd::force_backend(Some(Backend::Scalar));
    run_gemm(&x, &wt, &bias, &wl, &mut y_scalar);
    run_score(&cm, &rows, 1, &mut s_scalar);
    harl_simd::force_backend(None);
    run_gemm(&x, &wt, &bias, &wl, &mut y_simd);
    run_score(&cm, &rows, 1, &mut s_simd);
    let bit_identical = bits_equal_f32(&y_scalar, &y_simd) && bits_equal_f64(&s_scalar, &s_simd);
    assert!(
        bit_identical,
        "dispatched kernels must be bit-identical to the scalar reference"
    );

    // --- timed reps -------------------------------------------------------
    harl_simd::force_backend(Some(Backend::Scalar));
    let gemm_scalar_ms = time_reps(wl.reps, || run_gemm(&x, &wt, &bias, &wl, &mut y_scalar));
    let gbt_scalar_ms = time_reps(wl.reps, || {
        run_score(&cm, &rows, wl.score_passes, &mut s_scalar)
    });
    harl_simd::force_backend(None);
    let gemm_simd_ms = time_reps(wl.reps, || run_gemm(&x, &wt, &bias, &wl, &mut y_simd));
    let gbt_simd_ms = time_reps(wl.reps, || {
        run_score(&cm, &rows, wl.score_passes, &mut s_simd)
    });

    let backend = harl_simd::backend_name().to_string();
    let gemm_speedup = gemm_scalar_ms / gemm_simd_ms;
    let gbt_speedup = gbt_scalar_ms / gbt_simd_ms;
    println!(
        "simd_gemm_{}x{}x{} scalar: [{gemm_scalar_ms:.3} ms] {backend}: [{gemm_simd_ms:.3} ms] \
         speedup {gemm_speedup:.2}x",
        wl.batch, wl.in_dim, wl.out_dim
    );
    println!(
        "simd_gbt_score_r{} scalar: [{gbt_scalar_ms:.3} ms] {backend}: [{gbt_simd_ms:.3} ms] \
         speedup {gbt_speedup:.2}x",
        wl.rows
    );
    println!("simd backend: {backend} (bit-identical)");

    let report = Report {
        backend,
        batch: wl.batch,
        in_dim: wl.in_dim,
        out_dim: wl.out_dim,
        rows: wl.rows,
        gemm_scalar_ms,
        gemm_simd_ms,
        gemm_speedup,
        gbt_scalar_ms,
        gbt_simd_ms,
        gbt_speedup,
        bit_identical,
        smoke,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = match std::env::var("HARL_BENCH_OUT") {
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_simd.json"),
    };
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
