//! Criterion benchmarks of whole search rounds: one Ansor evolutionary
//! round, one HARL episode+measurement round, one Flextensor episode, and
//! one network task-scheduler step. These are the units the experiment
//! figures are built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use harl_ansor::{
    AnsorConfig, AnsorNetworkTuner, AnsorTuner, EvoConfig, FlextensorConfig, FlextensorTuner,
    GradientParams,
};
use harl_core::{HarlConfig, HarlNetworkTuner, HarlOperatorTuner};
use harl_gbt::GbtParams;
use harl_tensor_ir::workload;
use harl_tensor_sim::{Hardware, MeasureConfig, Measurer};

fn small_ansor_cfg() -> AnsorConfig {
    AnsorConfig {
        measure_per_round: 16,
        evo: EvoConfig {
            population: 64,
            generations: 2,
            ..Default::default()
        },
        gbt: GbtParams {
            n_rounds: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn small_harl_cfg() -> HarlConfig {
    HarlConfig {
        measure_per_round: 16,
        ..HarlConfig::fast()
    }
}

fn bench_ansor_round(c: &mut Criterion) {
    c.bench_function("ansor_round_16_measurements", |b| {
        b.iter_batched(
            || {
                let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
                (m, workload::gemm(512, 512, 512))
            },
            |(m, g)| {
                let mut t = AnsorTuner::new(g, &m, small_ansor_cfg());
                t.round(16)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_harl_round(c: &mut Criterion) {
    c.bench_function("harl_round_16_measurements", |b| {
        b.iter_batched(
            || {
                let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
                (m, workload::gemm(512, 512, 512))
            },
            |(m, g)| {
                let mut t = HarlOperatorTuner::new(g, &m, small_harl_cfg());
                t.round(16)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_flextensor_episode(c: &mut Criterion) {
    c.bench_function("flextensor_episode", |b| {
        b.iter_batched(
            || {
                let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
                (m, workload::gemm(256, 256, 256))
            },
            |(m, g)| {
                let cfg = FlextensorConfig {
                    episode_len: 8,
                    tracks: 4,
                    ..Default::default()
                };
                let mut t = FlextensorTuner::new(g, &m, cfg);
                t.episode(64)
            },
            BatchSize::SmallInput,
        )
    });
}

fn net_graphs() -> Vec<harl_tensor_ir::Subgraph> {
    vec![
        workload::gemm(256, 256, 256),
        workload::softmax(1024, 128),
        workload::conv2d_bn_relu(1, 28, 28, 64, 64, 3, 1, 1),
    ]
}

fn bench_network_steps(c: &mut Criterion) {
    c.bench_function("ansor_network_round", |b| {
        b.iter_batched(
            || Measurer::new(Hardware::cpu(), MeasureConfig::default()),
            |m| {
                let mut nt = AnsorNetworkTuner::new(
                    net_graphs(),
                    &m,
                    small_ansor_cfg(),
                    GradientParams::default(),
                );
                nt.round(16)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("harl_network_round", |b| {
        b.iter_batched(
            || Measurer::new(Hardware::cpu(), MeasureConfig::default()),
            |m| {
                let mut nt = HarlNetworkTuner::new(net_graphs(), &m, small_harl_cfg());
                nt.round(16)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ansor_round, bench_harl_round, bench_flextensor_episode, bench_network_steps
}
criterion_main!(benches);
