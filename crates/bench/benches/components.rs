//! Criterion micro-benchmarks of every substrate component on the hot
//! path of the auto-schedulers.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use harl_ansor::{evolve_candidates, EvoConfig};
use harl_bandit::{Bandit, SlidingWindowUcb};
use harl_gbt::{CostModel, Gbt, GbtParams, ScoringPipeline};
use harl_nnet::{PpoAgent, PpoConfig};
use harl_tensor_ir::{
    apply_action, extract_features, generate_sketches, tile_action_mask, Action, ActionSpace,
    Schedule, StepDir, Target,
};
use harl_tensor_sim::Hardware;

fn bench_sketch_generation(c: &mut Criterion) {
    let g = harl_tensor_ir::workload::gemm(1024, 1024, 1024);
    c.bench_function("sketch_generation_gemm", |b| {
        b.iter(|| generate_sketches(std::hint::black_box(&g), Target::Cpu))
    });
    let conv = harl_tensor_ir::workload::conv2d_bn_relu(1, 56, 56, 64, 64, 3, 1, 1);
    c.bench_function("sketch_generation_conv_fused", |b| {
        b.iter(|| generate_sketches(std::hint::black_box(&conv), Target::Cpu))
    });
}

fn bench_schedule_ops(c: &mut Criterion) {
    let g = harl_tensor_ir::workload::gemm(1024, 1024, 1024);
    let sk = &generate_sketches(&g, Target::Cpu)[0];
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("schedule_random_sample", |b| {
        b.iter(|| Schedule::random(std::hint::black_box(sk), Target::Cpu, &mut rng))
    });
    let s = Schedule::random(sk, Target::Cpu, &mut rng);
    let space = ActionSpace::of(sk);
    let a = Action {
        tile: space.encode_tile(0, 1),
        compute_at: StepDir::Stay,
        parallel: StepDir::Up,
        unroll: StepDir::Up,
    };
    c.bench_function("apply_action", |b| {
        b.iter(|| apply_action(sk, Target::Cpu, std::hint::black_box(&s), &a))
    });
    c.bench_function("tile_action_mask", |b| {
        b.iter(|| tile_action_mask(sk, std::hint::black_box(&s), &space))
    });
    c.bench_function("feature_extraction", |b| {
        b.iter(|| extract_features(&g, sk, Target::Cpu, std::hint::black_box(&s)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let g = harl_tensor_ir::workload::gemm(1024, 1024, 1024);
    let sk = &generate_sketches(&g, Target::Cpu)[0];
    let mut rng = StdRng::seed_from_u64(2);
    let s = Schedule::random(sk, Target::Cpu, &mut rng);
    let cpu = Hardware::cpu();
    let gpu = Hardware::gpu();
    c.bench_function("simulator_cpu_exec_time", |b| {
        b.iter(|| cpu.execution_time(&g, sk, std::hint::black_box(&s)))
    });
    let skg = &generate_sketches(&g, Target::Gpu)[0];
    let sg = Schedule::random(skg, Target::Gpu, &mut rng);
    c.bench_function("simulator_gpu_exec_time", |b| {
        b.iter(|| gpu.execution_time(&g, skg, std::hint::black_box(&sg)))
    });
}

fn bench_gbt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = harl_tensor_ir::workload::gemm(512, 512, 512);
    let sk = &generate_sketches(&g, Target::Cpu)[0];
    let cpu = Hardware::cpu();
    let data: Vec<(Vec<f32>, f64)> = (0..256)
        .map(|_| {
            let s = Schedule::random(sk, Target::Cpu, &mut rng);
            let f = extract_features(&g, sk, Target::Cpu, &s);
            let y = g.flops() / cpu.execution_time(&g, sk, &s);
            (f, y)
        })
        .collect();
    let xs: Vec<Vec<f32>> = data.iter().map(|(f, _)| f.clone()).collect();
    let ys: Vec<f64> = data.iter().map(|(_, y)| *y / 1e12).collect();
    c.bench_function("gbt_fit_256x64", |b| {
        b.iter(|| {
            Gbt::fit(
                &xs,
                &ys,
                GbtParams {
                    n_rounds: 12,
                    ..Default::default()
                },
            )
        })
    });
    let model = Gbt::fit(
        &xs,
        &ys,
        GbtParams {
            n_rounds: 12,
            ..Default::default()
        },
    );
    c.bench_function("gbt_predict", |b| {
        b.iter(|| model.predict(std::hint::black_box(&xs[0])))
    });
}

fn bench_ppo(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let g = harl_tensor_ir::workload::gemm(1024, 1024, 1024);
    let sk = &generate_sketches(&g, Target::Cpu)[0];
    let space = ActionSpace::of(sk);
    let mut agent = PpoAgent::new(
        harl_tensor_ir::FEATURE_DIM,
        &[space.tile_actions(), 3, 3, 3],
        PpoConfig::default(),
        &mut rng,
    );
    let s = Schedule::random(sk, Target::Cpu, &mut rng);
    let feat = extract_features(&g, sk, Target::Cpu, &s);
    let masks = vec![
        tile_action_mask(sk, &s, &space),
        vec![true; 3],
        vec![true; 3],
        vec![true; 3],
    ];
    c.bench_function("ppo_act", |b| {
        b.iter(|| agent.act(std::hint::black_box(&feat), &masks, &mut rng))
    });
    for _ in 0..128 {
        let (a, lp) = agent.act(&feat, &masks, &mut rng);
        agent.record(feat.clone(), a, lp, 0.1, &feat, masks.clone());
    }
    c.bench_function("ppo_train_step_minibatch64", |b| {
        b.iter(|| agent.train_step(&mut rng))
    });
}

fn bench_bandit(c: &mut Criterion) {
    let mut b1 = SlidingWindowUcb::with_paper_defaults(24);
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("swucb_select_update", |b| {
        b.iter(|| {
            let a = b1.select(&mut rng);
            b1.update(a, 0.5);
            a
        })
    });
}

fn bench_evolution(c: &mut Criterion) {
    let g = harl_tensor_ir::workload::gemm(512, 512, 512);
    let sketches = generate_sketches(&g, Target::Cpu);
    let cm = CostModel::new(GbtParams {
        n_rounds: 12,
        ..Default::default()
    });
    let seen = HashSet::new();
    let cfg = EvoConfig {
        population: 128,
        generations: 3,
        ..Default::default()
    };
    c.bench_function("evolution_round_pop128", |b| {
        b.iter_batched(
            || (StdRng::seed_from_u64(6), ScoringPipeline::new(1, 4096)),
            |(mut rng, mut pipeline)| {
                evolve_candidates(
                    &g,
                    &sketches,
                    Target::Cpu,
                    &cm,
                    &[],
                    &seen,
                    16,
                    &cfg,
                    &mut pipeline,
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sketch_generation,
    bench_schedule_ops,
    bench_simulator,
    bench_gbt,
    bench_ppo,
    bench_bandit,
    bench_evolution
);
criterion_main!(benches);
