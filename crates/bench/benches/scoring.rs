//! Batched-scoring benchmark: the seed's serial `extract → score` loop vs
//! the `ScoringPipeline` (flattened GBT batch kernel + feature cache +
//! thread pool), on a population-scoring workload shaped like the tuners'
//! inner loops.
//!
//! The workload scores a 512-candidate population for 16 passes, replacing
//! 1/8 of the population with fresh schedules between passes — the churn
//! profile of evolutionary rounds and episode tracks, where elites, clones,
//! and revisited candidates dominate each scoring call (HARL's paper
//! config runs up to 2λ = 40 scoring steps per episode, so 16 passes is
//! conservative). The serial path re-extracts features and pointer-walks
//! the trees per candidate per pass (what every tuner did before the
//! pipeline); the batched path serves repeats from the scoring cache and
//! runs the tree-major flat kernel over the misses.
//!
//! Both paths must produce bit-identical scores — the benchmark asserts it
//! before reporting. Results land in `BENCH_scoring.json`.
//!
//! `HARL_BENCH_SMOKE=1` shrinks the workload for CI smoke runs;
//! `HARL_BENCH_OUT` redirects the JSON report (the smoke run should not
//! overwrite the committed full-size numbers).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use harl_gbt::{CostModel, GbtParams, ScoringPipeline};
use harl_tensor_ir::{
    extract_features, extract_features_into, generate_sketches, workload, Schedule, Sketch,
    Subgraph, Target,
};
use harl_tensor_sim::Hardware;

struct Workload {
    population: usize,
    passes: usize,
    /// 1-in-`churn` candidates are replaced between passes.
    churn: usize,
    reps: usize,
}

#[derive(Serialize)]
struct Report {
    population: usize,
    passes: usize,
    churn: usize,
    threads: usize,
    serial_ms: f64,
    batched_ms: f64,
    speedup: f64,
    cache_hit_rate: f64,
    bit_identical: bool,
    smoke: bool,
}

fn trained_model(g: &Subgraph, sk: &Sketch, rng: &mut StdRng) -> CostModel {
    let cpu = Hardware::cpu();
    let mut cm = CostModel::new(GbtParams::default());
    let batch: Vec<(Vec<f32>, f64)> = (0..256)
        .map(|_| {
            let s = Schedule::random(sk, Target::Cpu, rng);
            let f = extract_features(g, sk, Target::Cpu, &s);
            let y = g.flops() / cpu.execution_time(g, sk, &s);
            (f, y)
        })
        .collect();
    cm.update_batch(batch);
    assert!(cm.is_trained(), "benchmark needs a trained model");
    cm
}

/// The populations each pass scores, generated once so both paths see the
/// exact same candidate stream.
fn passes(sk: &Sketch, wl: &Workload, rng: &mut StdRng) -> Vec<Vec<Schedule>> {
    let mut pop: Vec<Schedule> = (0..wl.population)
        .map(|_| Schedule::random(sk, Target::Cpu, rng))
        .collect();
    let mut out = Vec::with_capacity(wl.passes);
    out.push(pop.clone());
    for _ in 1..wl.passes {
        let replace = wl.population / wl.churn;
        for _ in 0..replace {
            let i = rng.gen_range(0..pop.len());
            pop[i] = Schedule::random(sk, Target::Cpu, rng);
        }
        out.push(pop.clone());
    }
    out
}

/// The seed's per-candidate path: fresh feature extraction plus a
/// pointer-walk `score` for every candidate of every pass.
fn run_serial(g: &Subgraph, sk: &Sketch, cm: &CostModel, passes: &[Vec<Schedule>]) -> Vec<f64> {
    let mut scores = Vec::new();
    for pop in passes {
        for s in pop {
            let f = extract_features(g, sk, Target::Cpu, s);
            scores.push(cm.score(&f));
        }
    }
    scores
}

fn run_batched(
    g: &Subgraph,
    sk: &Sketch,
    cm: &CostModel,
    passes: &[Vec<Schedule>],
    pipeline: &mut ScoringPipeline,
) -> Vec<f64> {
    pipeline.begin_episode();
    let extract =
        |s: &Schedule, buf: &mut Vec<f32>| extract_features_into(g, sk, Target::Cpu, s, buf);
    let mut scores = Vec::new();
    let mut batch = Vec::new();
    for pop in passes {
        pipeline.score_into(cm, pop, |s| s.fingerprint(), extract, &mut batch);
        scores.extend_from_slice(&batch);
    }
    scores
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("HARL_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut wl = if smoke {
        Workload {
            population: 64,
            passes: 3,
            churn: 8,
            reps: 2,
        }
    } else {
        Workload {
            population: 512,
            passes: 16,
            churn: 8,
            reps: 5,
        }
    };
    // the bench-regression gate needs a stabler median than CI smoke does;
    // let it raise the rep count without touching the workload shape
    if let Ok(reps) = std::env::var("HARL_BENCH_REPS") {
        if let Ok(n) = reps.trim().parse::<usize>() {
            wl.reps = n.max(1);
        }
    }
    let threads = 4;

    let g = workload::gemm(512, 512, 512);
    let sketches = generate_sketches(&g, Target::Cpu);
    let sk = &sketches[0];
    let mut rng = StdRng::seed_from_u64(42);
    let cm = trained_model(&g, sk, &mut rng);
    let stream = passes(sk, &wl, &mut rng);

    // warm-up + bit-identity check outside the timed region
    let serial_scores = run_serial(&g, sk, &cm, &stream);
    let mut pipeline = ScoringPipeline::new(threads, 4096);
    let batched_scores = run_batched(&g, sk, &cm, &stream, &mut pipeline);
    let bit_identical = serial_scores.len() == batched_scores.len()
        && serial_scores
            .iter()
            .zip(&batched_scores)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bit_identical,
        "batched scores must be bit-identical to the serial path"
    );
    let stats = *pipeline.stats();
    let cache_hit_rate = stats.hit_rate();

    let mut serial_samples = Vec::with_capacity(wl.reps);
    for _ in 0..wl.reps {
        let t = Instant::now();
        let s = run_serial(&g, sk, &cm, &stream);
        serial_samples.push(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(s);
    }
    let mut batched_samples = Vec::with_capacity(wl.reps);
    for _ in 0..wl.reps {
        let mut pipeline = ScoringPipeline::new(threads, 4096);
        let t = Instant::now();
        let s = run_batched(&g, sk, &cm, &stream, &mut pipeline);
        batched_samples.push(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(s);
    }

    let serial_ms = median_ms(serial_samples);
    let batched_ms = median_ms(batched_samples);
    let speedup = serial_ms / batched_ms;
    println!(
        "scoring_serial_pop{}x{} time: [{serial_ms:.3} ms]",
        wl.population, wl.passes
    );
    println!(
        "scoring_batched_pop{}x{}_t{threads} time: [{batched_ms:.3} ms]",
        wl.population, wl.passes
    );
    println!("scoring speedup: {speedup:.2}x (cache hit rate {cache_hit_rate:.3}, bit-identical)");

    let report = Report {
        population: wl.population,
        passes: wl.passes,
        churn: wl.churn,
        threads,
        serial_ms,
        batched_ms,
        speedup,
        cache_hit_rate,
        bit_identical,
        smoke,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // benches run with CWD = the package dir; land the report at the
    // workspace root where CI and the README expect it
    let path = match std::env::var("HARL_BENCH_OUT") {
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_scoring.json"),
    };
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
