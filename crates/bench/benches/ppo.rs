//! Batched-PPO benchmark: the seed's per-sample scalar forward/backward
//! loops vs the batch-major GEMM path behind `ppo_act` and `Ppo::train`.
//!
//! The workload mirrors the tuners' inner loops at paper shapes: a policy
//! (trunk `FEATURE_DIM → 64 → 64` + tanh + heads `[101, 3, 3, 3]`) scores
//! all live tracks of an episode step in one matrix-matrix pass, and a
//! critic (`FEATURE_DIM → 64 → 64 → 1`) runs a 64-sample training
//! minibatch forward + backward with the gradient reduction on the
//! `HARL_PPO_THREADS`-style pool. The serial reference reimplements the
//! seed's scalar per-sample loops (o-major dot products, per-sample
//! gradient accumulation) over the exact same weights and inputs.
//!
//! Both paths must produce bit-identical logits, values, and gradients —
//! the benchmark asserts it before timing anything. Results land in
//! `BENCH_ppo.json`.
//!
//! `HARL_BENCH_SMOKE=1` shrinks the workload for CI smoke runs;
//! `HARL_BENCH_REPS` raises the rep count (the bench-regression gate
//! does); `HARL_BENCH_OUT` redirects the JSON report.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use harl_nnet::{Linear, Mlp, Workspace};
use harl_par::ThreadPool;
use harl_tensor_ir::FEATURE_DIM;

const HIDDEN: usize = 64;
const HEADS: [usize; 4] = [101, 3, 3, 3];
const MINIBATCH: usize = 64;

struct Workload {
    /// Live tracks per episode step (rows of the `ppo_act` batch).
    tracks: usize,
    /// Episode steps per rep (each is one policy pass over all tracks).
    steps: usize,
    /// Training minibatch passes per rep (each is critic forward+backward).
    epochs: usize,
    reps: usize,
}

#[derive(Serialize)]
struct Report {
    tracks: usize,
    steps: usize,
    epochs: usize,
    minibatch: usize,
    threads: usize,
    serial_ms: f64,
    batched_ms: f64,
    speedup: f64,
    bit_identical: bool,
    smoke: bool,
}

/// The seed's per-sample dense layer: `y[o] = b[o] + Σ_i w[o][i]·x[i]`,
/// o-major, ascending i — the addition chain the GEMM kernel reproduces.
#[allow(clippy::needless_range_loop)] // index loops mirror the seed's exact order
fn scalar_linear(l: &Linear, x: &[f32], y: &mut [f32]) {
    let out = l.b.len();
    let ind = l.w.len() / out;
    for o in 0..out {
        let mut acc = l.b[o];
        for (wv, xv) in l.w[o * ind..(o + 1) * ind].iter().zip(x) {
            acc += wv * xv;
        }
        y[o] = acc;
    }
}

/// Seed-style per-sample MLP forward; fills `acts` with every layer's
/// post-activation output (tanh on hidden layers, linear final layer).
fn scalar_mlp_forward(m: &Mlp, x: &[f32], acts: &mut Vec<Vec<f32>>) {
    acts.clear();
    for (li, l) in m.layers.iter().enumerate() {
        let mut y = vec![0.0f32; l.b.len()];
        {
            let inp: &[f32] = if li == 0 { x } else { &acts[li - 1] };
            scalar_linear(l, inp, &mut y);
        }
        if li + 1 < m.layers.len() {
            for v in y.iter_mut() {
                *v = v.tanh();
            }
        }
        acts.push(y);
    }
}

/// Seed-style per-sample MLP backward: accumulates into `gw`/`gb` and
/// chains `gx` layer to layer, in the exact order `backward_batch`
/// reproduces per output row (ascending samples, ascending o).
#[allow(clippy::needless_range_loop)] // index loops mirror the seed's exact order
fn scalar_mlp_backward(m: &mut Mlp, x: &[f32], acts: &[Vec<f32>], grad_out: &[f32]) {
    let mut gy = grad_out.to_vec();
    for li in (0..m.layers.len()).rev() {
        if li + 1 < m.layers.len() {
            for (g, a) in gy.iter_mut().zip(&acts[li]) {
                *g *= 1.0 - a * a;
            }
        }
        let inp: &[f32] = if li == 0 { x } else { &acts[li - 1] };
        let l = &mut m.layers[li];
        let out = l.b.len();
        let ind = l.w.len() / out;
        let mut gx = vec![0.0f32; ind];
        for o in 0..out {
            let g = gy[o];
            l.gb[o] += g;
            for i in 0..ind {
                l.gw[o * ind + i] += g * inp[i];
            }
            for i in 0..ind {
                gx[i] += l.w[o * ind + i] * g;
            }
        }
        gy = gx;
    }
}

#[derive(Clone)]
struct Nets {
    trunk: Mlp,
    heads: Vec<Linear>,
    critic: Mlp,
}

fn nets(rng: &mut StdRng) -> Nets {
    Nets {
        trunk: Mlp::new(&[FEATURE_DIM, HIDDEN, HIDDEN], rng),
        heads: HEADS.iter().map(|&h| Linear::new(HIDDEN, h, rng)).collect(),
        critic: Mlp::new(&[FEATURE_DIM, HIDDEN, HIDDEN, 1], rng),
    }
}

/// Per-sample scalar pass over every step and epoch (the seed's shape of
/// `ppo_act` + critic training). Returns (logits, values, critic grads)
/// for the bit-identity check.
fn run_serial(
    n: &mut Nets,
    act_steps: &[Vec<f32>],
    train_x: &[f32],
    targets: &[f32],
    epochs: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut logits = Vec::new();
    let mut acts = Vec::new();
    for step in act_steps {
        for x in step.chunks(FEATURE_DIM) {
            scalar_mlp_forward(&n.trunk, x, &mut acts);
            let mut trunk_out = acts.last().expect("trunk has layers").clone();
            for v in trunk_out.iter_mut() {
                *v = v.tanh();
            }
            for h in &n.heads {
                let mut y = vec![0.0f32; h.b.len()];
                scalar_linear(h, &trunk_out, &mut y);
                logits.extend_from_slice(&y);
            }
        }
    }
    let mut values = Vec::new();
    for _ in 0..epochs {
        n.critic.zero_grad();
        values.clear();
        let inv = 1.0f32 / MINIBATCH as f32;
        for (s, x) in train_x.chunks(FEATURE_DIM).enumerate() {
            scalar_mlp_forward(&n.critic, x, &mut acts);
            let v = acts.last().expect("critic has layers")[0];
            values.push(v);
            let g = 2.0 * (v - targets[s]) * inv;
            scalar_mlp_backward(&mut n.critic, x, &acts, &[g]);
        }
    }
    let grads: Vec<f32> = n
        .critic
        .layers
        .iter()
        .flat_map(|l| l.gw.iter().chain(l.gb.iter()).copied())
        .collect();
    (logits, values, grads)
}

/// The batch-major path: one GEMM pass per step over all tracks, one
/// batched forward + pool-reduced backward per training epoch.
fn run_batched(
    n: &mut Nets,
    act_steps: &[Vec<f32>],
    train_x: &[f32],
    targets: &[f32],
    epochs: usize,
    tracks: usize,
    pool: &ThreadPool,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut logits = Vec::new();
    let mut ws = Workspace::new();
    let mut wt = Vec::new();
    let mut head_y = Vec::new();
    let mut trunk_out = Vec::new();
    for step in act_steps {
        let out = n.trunk.forward_batch(step, tracks, &mut ws);
        trunk_out.clear();
        trunk_out.extend_from_slice(out);
        for v in trunk_out.iter_mut() {
            *v = v.tanh();
        }
        for h in &n.heads {
            h.forward_batch_into(&trunk_out, tracks, &mut wt, &mut head_y);
            logits.push((h.b.len(), head_y.clone()));
        }
    }
    // re-shuffle head-major step output into the serial row-major order
    let mut flat = Vec::new();
    for chunk in logits.chunks(HEADS.len()) {
        for b in 0..tracks {
            for (hs, y) in chunk {
                flat.extend_from_slice(&y[b * hs..(b + 1) * hs]);
            }
        }
    }
    let mut values = Vec::new();
    let mut grad = vec![0.0f32; MINIBATCH];
    for _ in 0..epochs {
        n.critic.zero_grad();
        let out = n.critic.forward_batch(train_x, MINIBATCH, &mut ws);
        values.clear();
        values.extend_from_slice(out);
        let inv = 1.0f32 / MINIBATCH as f32;
        for s in 0..MINIBATCH {
            grad[s] = 2.0 * (values[s] - targets[s]) * inv;
        }
        n.critic.backward_batch(&grad, &mut ws, pool);
    }
    let grads: Vec<f32> = n
        .critic
        .layers
        .iter()
        .flat_map(|l| l.gw.iter().chain(l.gb.iter()).copied())
        .collect();
    (flat, values, grads)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("HARL_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut wl = if smoke {
        Workload {
            tracks: 8,
            steps: 3,
            epochs: 2,
            reps: 2,
        }
    } else {
        Workload {
            tracks: 64,
            steps: 24,
            epochs: 16,
            reps: 5,
        }
    };
    if let Ok(reps) = std::env::var("HARL_BENCH_REPS") {
        if let Ok(r) = reps.trim().parse::<usize>() {
            wl.reps = r.max(1);
        }
    }
    let threads = 4;
    let pool = ThreadPool::new(threads);

    let mut rng = StdRng::seed_from_u64(42);
    let mut net_a = nets(&mut rng);
    let mut net_b = net_a.clone();
    let act_steps: Vec<Vec<f32>> = (0..wl.steps)
        .map(|_| {
            (0..wl.tracks * FEATURE_DIM)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect()
        })
        .collect();
    let train_x: Vec<f32> = (0..MINIBATCH * FEATURE_DIM)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let targets: Vec<f32> = (0..MINIBATCH)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();

    // warm-up + bit-identity check outside the timed region
    let serial = run_serial(&mut net_a, &act_steps, &train_x, &targets, wl.epochs);
    let batched = run_batched(
        &mut net_b, &act_steps, &train_x, &targets, wl.epochs, wl.tracks, &pool,
    );
    let bit_identical = bits_equal(&serial.0, &batched.0)
        && bits_equal(&serial.1, &batched.1)
        && bits_equal(&serial.2, &batched.2);
    assert!(
        bit_identical,
        "batched PPO math must be bit-identical to the per-sample path"
    );

    let mut serial_samples = Vec::with_capacity(wl.reps);
    for _ in 0..wl.reps {
        let t = Instant::now();
        let r = run_serial(&mut net_a, &act_steps, &train_x, &targets, wl.epochs);
        serial_samples.push(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(r);
    }
    let mut batched_samples = Vec::with_capacity(wl.reps);
    for _ in 0..wl.reps {
        let t = Instant::now();
        let r = run_batched(
            &mut net_b, &act_steps, &train_x, &targets, wl.epochs, wl.tracks, &pool,
        );
        batched_samples.push(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(r);
    }

    let serial_ms = median_ms(serial_samples);
    let batched_ms = median_ms(batched_samples);
    let speedup = serial_ms / batched_ms;
    println!(
        "ppo_serial_t{}x{}s_e{} time: [{serial_ms:.3} ms]",
        wl.tracks, wl.steps, wl.epochs
    );
    println!(
        "ppo_batched_t{}x{}s_e{}_p{threads} time: [{batched_ms:.3} ms]",
        wl.tracks, wl.steps, wl.epochs
    );
    println!("ppo speedup: {speedup:.2}x (bit-identical)");

    let report = Report {
        tracks: wl.tracks,
        steps: wl.steps,
        epochs: wl.epochs,
        minibatch: MINIBATCH,
        threads,
        serial_ms,
        batched_ms,
        speedup,
        bit_identical,
        smoke,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = match std::env::var("HARL_BENCH_OUT") {
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_ppo.json"),
    };
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
