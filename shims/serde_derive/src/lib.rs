//! Derive macros for the offline `serde` shim.
//!
//! `#[derive(Serialize)]` generates an implementation of the shim's
//! JSON-writer `Serialize` trait; `#[derive(Deserialize)]` generates the
//! inverse decoder over the shim's parsed [`Value`] tree, mirroring the
//! serializer's encoding exactly (named struct → object, 1-tuple struct →
//! transparent, n-tuple struct → array, unit enum variant → string, data
//! variant → single-key object). `#[serde(skip)]` fields are restored with
//! `Default::default()`.
//!
//! The parser walks the raw token stream (no `syn` available offline): it
//! only needs item kind, item name, field/variant names, and `#[serde(skip)]`
//! markers — types are irrelevant because (de)serialization is dispatched
//! through the trait on each field value.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut s = String::from("w.begin_object();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "w.key(\"{f}\"); ::serde::Serialize::serialize(&self.{f}, w);\n",
                    f = f.name
                ));
            }
            s.push_str("w.end_object();");
            s
        }
        Data::TupleStruct(arity) => {
            if *arity == 1 {
                "::serde::Serialize::serialize(&self.0, w);".to_string()
            } else {
                let mut s = String::from("w.begin_array();\n");
                for i in 0..*arity {
                    s.push_str(&format!(
                        "w.elem(); ::serde::Serialize::serialize(&self.{i}, w);\n"
                    ));
                }
                s.push_str("w.end_array();");
                s
            }
        }
        Data::UnitStruct => "w.begin_object(); w.end_object();".to_string(),
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.fields {
                    VariantFields::Unit => s.push_str(&format!(
                        "{ty}::{v} => w.string(\"{v}\"),\n",
                        ty = item.name,
                        v = v.name
                    )),
                    VariantFields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let mut arm = format!(
                            "{ty}::{v}({binds}) => {{ w.begin_object(); w.key(\"{v}\");\n",
                            ty = item.name,
                            v = v.name,
                            binds = binds.join(", ")
                        );
                        if *arity == 1 {
                            arm.push_str("::serde::Serialize::serialize(x0, w);\n");
                        } else {
                            arm.push_str("w.begin_array();\n");
                            for b in &binds {
                                arm.push_str(&format!(
                                    "w.elem(); ::serde::Serialize::serialize({b}, w);\n"
                                ));
                            }
                            arm.push_str("w.end_array();\n");
                        }
                        arm.push_str("w.end_object(); }\n");
                        s.push_str(&arm);
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{ty}::{v} {{ {binds} }} => {{ w.begin_object(); w.key(\"{v}\"); w.begin_object();\n",
                            ty = item.name,
                            v = v.name,
                            binds = binds.join(", ")
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            arm.push_str(&format!(
                                "w.key(\"{f}\"); ::serde::Serialize::serialize({f}, w);\n",
                                f = f.name
                            ));
                        }
                        arm.push_str("w.end_object(); w.end_object(); }\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, w: &mut ::serde::ser::JsonWriter) {{\n{body}\n}}\n}}\n",
        name = item.name
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut s = format!("::core::result::Result::Ok({} {{\n", item.name);
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{f}: ::core::default::Default::default(),\n",
                        f = f.name
                    ));
                } else {
                    s.push_str(&format!(
                        "{f}: ::serde::de::field(v, \"{f}\")?,\n",
                        f = f.name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Data::TupleStruct(arity) => {
            if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({}(::serde::de::from_value(v)?))",
                    item.name
                )
            } else {
                let mut s = String::from("let arr = v.as_array()?;\n");
                s.push_str(&format!("::core::result::Result::Ok({}(", item.name));
                for i in 0..*arity {
                    s.push_str(&format!("::serde::de::elem(arr, {i})?, "));
                }
                s.push_str("))");
                s
            }
        }
        Data::UnitStruct => format!("let _ = v; ::core::result::Result::Ok({})", item.name),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({ty}::{v}),\n",
                        ty = item.name,
                        v = v.name
                    )),
                    VariantFields::Tuple(arity) => {
                        let mut arm = format!("\"{v}\" => {{ ", v = v.name);
                        if *arity == 1 {
                            arm.push_str(&format!(
                                "::core::result::Result::Ok({ty}::{v}(::serde::de::from_value(inner)?))",
                                ty = item.name,
                                v = v.name
                            ));
                        } else {
                            arm.push_str("let arr = inner.as_array()?;\n");
                            arm.push_str(&format!(
                                "::core::result::Result::Ok({ty}::{v}(",
                                ty = item.name,
                                v = v.name
                            ));
                            for i in 0..*arity {
                                arm.push_str(&format!("::serde::de::elem(arr, {i})?, "));
                            }
                            arm.push_str("))");
                        }
                        arm.push_str(" }\n");
                        data_arms.push_str(&arm);
                    }
                    VariantFields::Named(fields) => {
                        let mut arm = format!(
                            "\"{v}\" => ::core::result::Result::Ok({ty}::{v} {{\n",
                            ty = item.name,
                            v = v.name
                        );
                        for f in fields {
                            if f.skip {
                                arm.push_str(&format!(
                                    "{f}: ::core::default::Default::default(),\n",
                                    f = f.name
                                ));
                            } else {
                                arm.push_str(&format!(
                                    "{f}: ::serde::de::field(inner, \"{f}\")?,\n",
                                    f = f.name
                                ));
                            }
                        }
                        arm.push_str("}),\n");
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::de::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::de::DeError::new(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 other => {{\n\
                 let (tag, inner) = ::serde::de::sole_entry(other)?;\n\
                 let _ = inner;\n\
                 match tag {{\n\
                 {data_arms}\
                 _ => ::core::result::Result::Err(::serde::de::DeError::new(\
                 format!(\"unknown {name} variant `{{tag}}`\"))),\n\
                 }}\n\
                 }}\n\
                 }}",
                name = item.name
            )
        }
    };
    let out = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize_value(v: &::serde::de::Value) \
         -> ::core::result::Result<Self, ::serde::de::DeError> {{\n{body}\n}}\n}}\n",
        name = item.name
    );
    out.parse().expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

/// True when the attribute group tokens are `serde(... skip ...)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes; returns true if any is
/// `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos + 1 < toks.len() {
        match (&toks[*pos], &toks[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attr_is_serde_skip(g) {
                    skip = true;
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    skip
}

/// Consumes an optional `pub` / `pub(crate)` visibility.
fn eat_vis(toks: &[TokenTree], pos: &mut usize) {
    if matches!(&toks.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(&toks.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Counts top-level comma-separated entries in a tuple field group,
/// ignoring commas nested in groups or angle brackets.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// Parses the named fields of a brace group (struct body or struct
/// variant body).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < toks.len() {
        let skip = eat_attrs(&toks, &mut pos);
        eat_vis(&toks, &mut pos);
        let name = match &toks.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        pos += 1;
        // expect ':', then skip the type until a top-level ','
        debug_assert!(matches!(&toks.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':'));
        pos += 1;
        let mut angle = 0i32;
        while pos < toks.len() {
            match &toks[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < toks.len() {
        eat_attrs(&toks, &mut pos);
        let name = match &toks.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        pos += 1;
        let fields = match &toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // skip an optional `= discriminant` and the separating comma
        while pos < toks.len() {
            if matches!(&toks[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    eat_attrs(&toks, &mut pos);
    eat_vis(&toks, &mut pos);
    let kind = match &toks.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    pos += 1;
    let name = match &toks.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    pos += 1;
    // generics are not supported by this shim (nothing in the workspace
    // derives serde on a generic type); skip them if present so the error
    // surfaces in the generated impl rather than here
    if matches!(&toks.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut angle = 0i32;
        while pos < toks.len() {
            match &toks[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle -= 1;
                    if angle == 0 {
                        pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            pos += 1;
        }
    }
    let data = if kind == "enum" {
        match &toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match &toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(tuple_arity(g))
            }
            _ => Data::UnitStruct,
        }
    };
    Item { name, data }
}
