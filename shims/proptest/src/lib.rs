//! Offline mini-proptest: the subset of the `proptest` API this workspace's
//! property tests use, implemented as plain random testing (no shrinking).
//!
//! Supported surface: `proptest!` (with optional `#![proptest_config(..)]`),
//! strategies over integer ranges, tuples of strategies, `any::<T>()`,
//! `Just`, `.prop_map`, `prop_oneof!`, and the `prop_assert*` macros. Each
//! test runs `ProptestConfig::cases` deterministic cases seeded from the
//! test name, so failures are reproducible run-to-run.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;
pub use rand::SeedableRng;

/// The RNG driving case generation.
pub type TestRng = rand::rngs::StdRng;

/// A failed property case (message only; no shrinking).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // mostly unit-interval values, occasionally extreme ones
        match rng.gen_range(0..8u32) {
            0 => 0.0,
            1 => -rng.gen::<f64>() * 1e9,
            2 => rng.gen::<f64>() * 1e9,
            _ => rng.gen(),
        }
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)`
/// becomes a plain test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut seed: u64 = 0xcbf29ce484222325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x100000001b3);
                }
                for case in 0..cfg.cases {
                    let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                        seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "property '{}' failed at case {case}/{}: {e}",
                            stringify!($name),
                            cfg.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

pub mod prelude {
    //! Everything a property-test module needs, one glob away.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
#[allow(clippy::erasing_op, clippy::overly_complex_bool_expr)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..10, y in 0usize..=3) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn tuples_and_map(v in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&v), "v = {v}");
        }

        #[test]
        fn oneof_covers_options(x in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(x == 1 || x == 2);
            prop_assert_ne!(x, 0);
            prop_assert_eq!(x * 0, 0);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>(), _s in any::<u64>()) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = <TestRng as crate::SeedableRng>::seed_from_u64(9);
        let mut r2 = <TestRng as crate::SeedableRng>::seed_from_u64(9);
        let s = 0u32..100;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
