//! Offline `serde_json` shim: JSON string rendering over the serde shim's
//! writer, plus `from_str` decoding through the shim's parsed-value tree.
//! Only the entry points the workspace calls are provided.

use serde::ser::JsonWriter;
use serde::{Deserialize, Serialize};

/// (De)serialization error. Encoding is infallible in the shim (non-finite
/// floats are written as `null` instead of erroring); decoding produces
/// parse and shape errors through this type.
#[derive(Debug)]
pub struct Error(String);

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Self {
        Error(e.0)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Encodes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new();
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Encodes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::pretty();
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Decodes a value from JSON text.
pub fn from_str<'de, T: for<'a> Deserialize<'a>>(s: &'de str) -> Result<T, Error> {
    let value = serde::de::Value::parse(s)?;
    Ok(T::deserialize_value(&value)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn encodes_vec() {
        assert_eq!(super::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        assert_eq!(super::to_string_pretty(&vec![1u8]).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn decodes_what_it_encodes() {
        let v = vec![(1u64, 0.125f64), (u64::MAX, -3.5)];
        let text = super::to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = super::from_str(&text).unwrap();
        assert_eq!(back, v);
        assert!(super::from_str::<Vec<u8>>("not json").is_err());
    }
}
