//! Offline `serde_json` shim: JSON string rendering over the serde shim's
//! writer. Only the encoding entry points the workspace calls are provided.

use serde::ser::JsonWriter;
use serde::Serialize;

/// Serialization error. The shim writer is infallible (non-finite floats
/// are written as `null` instead of erroring), so this is never produced,
/// but the type keeps `?`-based call sites compiling.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Encodes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new();
    value.serialize(&mut w);
    Ok(w.finish())
}

/// Encodes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::pretty();
    value.serialize(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    #[test]
    fn encodes_vec() {
        assert_eq!(super::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        assert_eq!(super::to_string_pretty(&vec![1u8]).unwrap(), "[\n  1\n]");
    }
}
