//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses: a `Serialize` trait that drives a JSON writer, a `Deserialize`
//! trait that decodes from a parsed JSON [`de::Value`] tree, and the derive
//! macros.
//!
//! The real crate cannot be fetched (no registry access in the build
//! environment); the shim keeps call sites source-compatible:
//! `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`,
//! `serde_json::to_string_pretty`, and `serde_json::from_str` all work.
//!
//! Numbers are kept as raw source tokens in the `Value` tree and parsed at
//! the target width, so `u64` beyond 2^53 and `f32`/`f64` round-trip
//! exactly (Rust's float `Display` is shortest-round-trip).

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `w`.
    fn serialize(&self, w: &mut ser::JsonWriter);
}

/// Types that can rebuild themselves from a parsed JSON tree.
///
/// The lifetime parameter exists only for call-site compatibility with the
/// real crate's `Deserialize<'de>`; the shim always decodes from an owned
/// [`de::Value`].
pub trait Deserialize<'de>: Sized {
    /// Decodes `Self` from a parsed JSON value.
    fn deserialize_value(v: &de::Value) -> Result<Self, de::DeError>;
}

pub mod ser {
    //! The JSON writer the derive macros target.

    /// Incremental JSON writer with optional pretty-printing.
    pub struct JsonWriter {
        out: String,
        pretty: bool,
        /// Per-open-container flag: has the container emitted an entry yet?
        stack: Vec<bool>,
    }

    impl JsonWriter {
        /// A compact writer.
        pub fn new() -> Self {
            JsonWriter {
                out: String::new(),
                pretty: false,
                stack: Vec::new(),
            }
        }

        /// A pretty-printing writer (two-space indent).
        pub fn pretty() -> Self {
            JsonWriter {
                out: String::new(),
                pretty: true,
                stack: Vec::new(),
            }
        }

        /// The accumulated JSON text.
        pub fn finish(self) -> String {
            self.out
        }

        fn newline_indent(&mut self) {
            if self.pretty {
                self.out.push('\n');
                for _ in 0..self.stack.len() {
                    self.out.push_str("  ");
                }
            }
        }

        fn begin_entry(&mut self) {
            if let Some(has_entries) = self.stack.last_mut() {
                if *has_entries {
                    self.out.push(',');
                }
                *has_entries = true;
                self.newline_indent();
            }
        }

        /// Opens a JSON object.
        pub fn begin_object(&mut self) {
            self.out.push('{');
            self.stack.push(false);
        }

        /// Closes the innermost object.
        pub fn end_object(&mut self) {
            let had = self.stack.pop().unwrap_or(false);
            if had {
                self.newline_indent();
            }
            self.out.push('}');
        }

        /// Opens a JSON array.
        pub fn begin_array(&mut self) {
            self.out.push('[');
            self.stack.push(false);
        }

        /// Closes the innermost array.
        pub fn end_array(&mut self) {
            let had = self.stack.pop().unwrap_or(false);
            if had {
                self.newline_indent();
            }
            self.out.push(']');
        }

        /// Starts an object entry with the given key.
        pub fn key(&mut self, k: &str) {
            self.begin_entry();
            self.write_escaped(k);
            self.out.push(':');
            if self.pretty {
                self.out.push(' ');
            }
        }

        /// Starts an array element.
        pub fn elem(&mut self) {
            self.begin_entry();
        }

        /// Writes a string scalar (escaped).
        pub fn string(&mut self, s: &str) {
            self.write_escaped(s);
        }

        /// Writes a pre-formatted number token.
        pub fn number(&mut self, token: &str) {
            self.out.push_str(token);
        }

        /// Writes a boolean scalar.
        pub fn boolean(&mut self, b: bool) {
            self.out.push_str(if b { "true" } else { "false" });
        }

        /// Writes a JSON null.
        pub fn null(&mut self) {
            self.out.push_str("null");
        }

        fn write_escaped(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
    }

    impl Default for JsonWriter {
        fn default() -> Self {
            Self::new()
        }
    }
}

use ser::JsonWriter;

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut JsonWriter) {
                w.number(&self.to_string());
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut JsonWriter) {
                if self.is_finite() {
                    w.number(&format!("{self}"));
                } else {
                    // JSON has no Inf/NaN; serde_json errors, this shim is
                    // lenient and writes null
                    w.null();
                }
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, w: &mut JsonWriter) {
        w.boolean(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut JsonWriter) {
        (**self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        (**self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        match self {
            Some(v) => v.serialize(w),
            None => w.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            w.elem();
            v.serialize(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        self.as_slice().serialize(w);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut JsonWriter) {
        self.as_slice().serialize(w);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        w.elem();
        self.0.serialize(w);
        w.elem();
        self.1.serialize(w);
        w.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        w.elem();
        self.0.serialize(w);
        w.elem();
        self.1.serialize(w);
        w.elem();
        self.2.serialize(w);
        w.end_array();
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            w.elem();
            v.serialize(w);
        }
        w.end_array();
    }
}

pub mod de {
    //! Parsed-JSON tree and decoding helpers the `Deserialize` derive
    //! targets.

    use std::fmt;

    /// A parsed JSON value. Numbers are kept as their raw source token so
    /// each call site can parse at the exact target width.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        /// Raw number token, e.g. `-1.5e-3` or `18446744073709551615`.
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    /// Decoding error with a short human-readable message.
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl DeError {
        pub fn new(msg: impl Into<String>) -> Self {
            DeError(msg.into())
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "JSON decode error: {}", self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Value {
        fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Num(_) => "number",
                Value::Str(_) => "string",
                Value::Arr(_) => "array",
                Value::Obj(_) => "object",
            }
        }

        /// Object entry by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The elements of an array value.
        pub fn as_array(&self) -> Result<&[Value], DeError> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(DeError::new(format!(
                    "expected array, got {}",
                    other.kind()
                ))),
            }
        }

        /// The text of a string value.
        pub fn as_str(&self) -> Result<&str, DeError> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(DeError::new(format!(
                    "expected string, got {}",
                    other.kind()
                ))),
            }
        }

        /// Parses JSON text into a value tree.
        pub fn parse(text: &str) -> Result<Value, DeError> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let v = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(DeError::new(format!("trailing characters at byte {pos}")));
            }
            Ok(v)
        }
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), DeError> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(DeError::new(format!("expected `{lit}` at byte {}", *pos)))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(DeError::new("unexpected end of input")),
            Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
            Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(DeError::new(format!(
                                "expected `,` or `]` at byte {}",
                                *pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    let val = parse_value(b, pos)?;
                    entries.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => {
                            return Err(DeError::new(format!(
                                "expected `,` or `}}` at byte {}",
                                *pos
                            )))
                        }
                    }
                }
            }
            Some(c) if *c == b'-' || c.is_ascii_digit() => {
                let start = *pos;
                if b[*pos] == b'-' {
                    *pos += 1;
                }
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *pos += 1;
                }
                let token = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| DeError::new("invalid UTF-8 in number"))?;
                Ok(Value::Num(token.to_string()))
            }
            Some(c) => Err(DeError::new(format!(
                "unexpected byte `{}` at {}",
                *c as char, *pos
            ))),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, DeError> {
        if b.get(*pos) != Some(&b'"') {
            return Err(DeError::new(format!("expected string at byte {}", *pos)));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(DeError::new("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the shim
                            // writer (it emits non-BMP chars verbatim), so a
                            // lone code point is the only case to handle.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(DeError::new(format!("invalid escape {other:?}"))),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    /// Decodes a full value; the entry point generated decoders use.
    pub fn from_value<T: for<'de> super::Deserialize<'de>>(v: &Value) -> Result<T, DeError> {
        T::deserialize_value(v)
    }

    /// Decodes a named struct field, failing if the key is missing.
    pub fn field<T: for<'de> super::Deserialize<'de>>(v: &Value, name: &str) -> Result<T, DeError> {
        let inner = v
            .get(name)
            .ok_or_else(|| DeError::new(format!("missing field `{name}`")))?;
        T::deserialize_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {}", e.0)))
    }

    /// Decodes element `i` of an array-encoded tuple struct / variant.
    pub fn elem<T: for<'de> super::Deserialize<'de>>(
        arr: &[Value],
        i: usize,
    ) -> Result<T, DeError> {
        let inner = arr
            .get(i)
            .ok_or_else(|| DeError::new(format!("missing tuple element {i}")))?;
        T::deserialize_value(inner).map_err(|e| DeError::new(format!("element {i}: {}", e.0)))
    }

    /// The sole `(key, value)` entry of an externally-tagged enum object.
    pub fn sole_entry(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Obj(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(DeError::new(format!(
                "expected single-key variant object, got {}",
                other.kind()
            ))),
        }
    }
}

use de::{DeError, Value};

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(tok) => tok.parse::<$t>().map_err(|e| {
                        DeError::new(format!("bad {}: `{tok}` ({e})", stringify!($t)))
                    }),
                    other => Err(DeError::new(format!(
                        "expected {}, got JSON {:?}",
                        stringify!($t),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(tok) => tok.parse::<$t>().map_err(|e| {
                        DeError::new(format!("bad {}: `{tok}` ({e})", stringify!($t)))
                    }),
                    // The shim writer encodes non-finite floats as null;
                    // NaN is the lenient inverse (callers that care about
                    // infinities must normalize on restore).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected {}, got JSON {:?}",
                        stringify!($t),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(|s| s.to_string())
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::deserialize_value).collect()
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::deserialize_value).collect()
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array()?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<'de, A: for<'a> Deserialize<'a>, B: for<'a> Deserialize<'a>> Deserialize<'de> for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array()?;
        if items.len() != 2 {
            return Err(DeError::new(format!(
                "expected 2-tuple, got {} elements",
                items.len()
            )));
        }
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
        ))
    }
}

impl<'de, A: for<'a> Deserialize<'a>, B: for<'a> Deserialize<'a>, C: for<'a> Deserialize<'a>>
    Deserialize<'de> for (A, B, C)
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array()?;
        if items.len() != 3 {
            return Err(DeError::new(format!(
                "expected 3-tuple, got {} elements",
                items.len()
            )));
        }
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
            C::deserialize_value(&items[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::ser::JsonWriter;
    use super::Serialize;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut w = JsonWriter::new();
        v.serialize(&mut w);
        w.finish()
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(&3u32), "3");
        assert_eq!(to_json(&-4i64), "-4");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&"a\"b".to_string()), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(7u8)), "7");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
    }

    #[test]
    fn parse_and_decode_scalars() {
        use super::de::{from_value, Value};
        let v = Value::parse("{\"a\": [1, 2.5, -3], \"b\": \"x\\ny\", \"c\": null}").unwrap();
        assert_eq!(
            from_value::<u32>(v.get("a").unwrap().as_array().unwrap().first().unwrap()).unwrap(),
            1
        );
        assert_eq!(
            from_value::<Vec<f64>>(v.get("a").unwrap()).unwrap(),
            vec![1.0, 2.5, -3.0]
        );
        assert_eq!(from_value::<String>(v.get("b").unwrap()).unwrap(), "x\ny");
        assert_eq!(from_value::<Option<u8>>(v.get("c").unwrap()).unwrap(), None);
        assert!(from_value::<f64>(v.get("c").unwrap()).unwrap().is_nan());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("[1] junk").is_err());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        use super::de::{from_value, Value};
        for x in [f64::MIN_POSITIVE, 0.1, 1.0 / 3.0, -1.5e300, 4.9e-324] {
            let v = Value::parse(&to_json(&x)).unwrap();
            assert_eq!(from_value::<f64>(&v).unwrap().to_bits(), x.to_bits());
        }
        for x in [0.1f32, 1.0f32 / 3.0, f32::MIN_POSITIVE] {
            let v = Value::parse(&to_json(&x)).unwrap();
            assert_eq!(from_value::<f32>(&v).unwrap().to_bits(), x.to_bits());
        }
        let big = u64::MAX - 3;
        let v = Value::parse(&to_json(&big)).unwrap();
        assert_eq!(from_value::<u64>(&v).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        use super::de::{from_value, Value};
        use std::collections::VecDeque;
        let dq: VecDeque<(usize, f64)> = [(1, 0.5), (2, -0.25)].into_iter().collect();
        let v = Value::parse(&to_json(&dq)).unwrap();
        assert_eq!(from_value::<VecDeque<(usize, f64)>>(&v).unwrap(), dq);
        let arr = [3u64, 9, 27];
        let v = Value::parse(&to_json(&arr)).unwrap();
        assert_eq!(from_value::<[u64; 3]>(&v).unwrap(), arr);
        assert!(from_value::<[u64; 2]>(&v).is_err());
    }

    #[test]
    fn nested_objects_pretty() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("a");
        vec![1u8, 2].serialize(&mut w);
        w.key("b");
        w.begin_object();
        w.key("c");
        1u8.serialize(&mut w);
        w.end_object();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": 1\n  }\n}"
        );
    }
}
