//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses: a `Serialize` trait that drives a JSON writer, a `Deserialize`
//! marker (nothing in the workspace deserializes), and the derive macros.
//!
//! The real crate cannot be fetched (no registry access in the build
//! environment); the shim keeps call sites source-compatible:
//! `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`, and
//! `serde_json::to_string_pretty` all work.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `w`.
    fn serialize(&self, w: &mut ser::JsonWriter);
}

/// Marker standing in for `serde::Deserialize`. Blanket-implemented: the
/// derive expands to nothing and no code path deserializes.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

pub mod ser {
    //! The JSON writer the derive macros target.

    /// Incremental JSON writer with optional pretty-printing.
    pub struct JsonWriter {
        out: String,
        pretty: bool,
        /// Per-open-container flag: has the container emitted an entry yet?
        stack: Vec<bool>,
    }

    impl JsonWriter {
        /// A compact writer.
        pub fn new() -> Self {
            JsonWriter {
                out: String::new(),
                pretty: false,
                stack: Vec::new(),
            }
        }

        /// A pretty-printing writer (two-space indent).
        pub fn pretty() -> Self {
            JsonWriter {
                out: String::new(),
                pretty: true,
                stack: Vec::new(),
            }
        }

        /// The accumulated JSON text.
        pub fn finish(self) -> String {
            self.out
        }

        fn newline_indent(&mut self) {
            if self.pretty {
                self.out.push('\n');
                for _ in 0..self.stack.len() {
                    self.out.push_str("  ");
                }
            }
        }

        fn begin_entry(&mut self) {
            if let Some(has_entries) = self.stack.last_mut() {
                if *has_entries {
                    self.out.push(',');
                }
                *has_entries = true;
                self.newline_indent();
            }
        }

        /// Opens a JSON object.
        pub fn begin_object(&mut self) {
            self.out.push('{');
            self.stack.push(false);
        }

        /// Closes the innermost object.
        pub fn end_object(&mut self) {
            let had = self.stack.pop().unwrap_or(false);
            if had {
                self.newline_indent();
            }
            self.out.push('}');
        }

        /// Opens a JSON array.
        pub fn begin_array(&mut self) {
            self.out.push('[');
            self.stack.push(false);
        }

        /// Closes the innermost array.
        pub fn end_array(&mut self) {
            let had = self.stack.pop().unwrap_or(false);
            if had {
                self.newline_indent();
            }
            self.out.push(']');
        }

        /// Starts an object entry with the given key.
        pub fn key(&mut self, k: &str) {
            self.begin_entry();
            self.write_escaped(k);
            self.out.push(':');
            if self.pretty {
                self.out.push(' ');
            }
        }

        /// Starts an array element.
        pub fn elem(&mut self) {
            self.begin_entry();
        }

        /// Writes a string scalar (escaped).
        pub fn string(&mut self, s: &str) {
            self.write_escaped(s);
        }

        /// Writes a pre-formatted number token.
        pub fn number(&mut self, token: &str) {
            self.out.push_str(token);
        }

        /// Writes a boolean scalar.
        pub fn boolean(&mut self, b: bool) {
            self.out.push_str(if b { "true" } else { "false" });
        }

        /// Writes a JSON null.
        pub fn null(&mut self) {
            self.out.push_str("null");
        }

        fn write_escaped(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
    }

    impl Default for JsonWriter {
        fn default() -> Self {
            Self::new()
        }
    }
}

use ser::JsonWriter;

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut JsonWriter) {
                w.number(&self.to_string());
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, w: &mut JsonWriter) {
                if self.is_finite() {
                    w.number(&format!("{self}"));
                } else {
                    // JSON has no Inf/NaN; serde_json errors, this shim is
                    // lenient and writes null
                    w.null();
                }
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, w: &mut JsonWriter) {
        w.boolean(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut JsonWriter) {
        (**self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        (**self).serialize(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        match self {
            Some(v) => v.serialize(w),
            None => w.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            w.elem();
            v.serialize(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut JsonWriter) {
        self.as_slice().serialize(w);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut JsonWriter) {
        self.as_slice().serialize(w);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        w.elem();
        self.0.serialize(w);
        w.elem();
        self.1.serialize(w);
        w.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, w: &mut JsonWriter) {
        w.begin_array();
        w.elem();
        self.0.serialize(w);
        w.elem();
        self.1.serialize(w);
        w.elem();
        self.2.serialize(w);
        w.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::ser::JsonWriter;
    use super::Serialize;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut w = JsonWriter::new();
        v.serialize(&mut w);
        w.finish()
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(&3u32), "3");
        assert_eq!(to_json(&-4i64), "-4");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&"a\"b".to_string()), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(7u8)), "7");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
    }

    #[test]
    fn nested_objects_pretty() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("a");
        vec![1u8, 2].serialize(&mut w);
        w.key("b");
        w.begin_object();
        w.key("c");
        1u8.serialize(&mut w);
        w.end_object();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": 1\n  }\n}"
        );
    }
}
