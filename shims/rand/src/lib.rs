//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses. The build environment has no crates.io access, so the real crate
//! cannot be fetched; this shim keeps the exact call-site API (`Rng`,
//! `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`) over a deterministic
//! xoshiro256** generator seeded through SplitMix64.
//!
//! Only the surface the workspace calls is provided. Statistical quality is
//! more than sufficient for search-algorithm reproduction: xoshiro256** is
//! the same family the real `rand` uses for `SmallRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` without modulo bias (Lemire reduction
/// with a rejection fallback on the biased strip).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = (x as u128 * bound as u128) as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (s as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = Standard::sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample from the full domain of `T` (floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshot of the raw generator state, for checkpointing.
        ///
        /// Round-trips exactly through [`StdRng::from_state`]: a restored
        /// generator produces the same stream as the original would have.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&w));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[*v.choose(&mut rng).unwrap() as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }
}
