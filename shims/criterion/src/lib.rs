//! Offline criterion shim. Provides the `Criterion`/`Bencher` API surface
//! the workspace benches use, timing with a plain wall-clock loop and
//! printing one median-estimate line per benchmark. No statistics, HTML
//! reports, or CLI filtering — just enough to keep `cargo bench` useful
//! without registry access.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How per-iteration inputs are batched in `iter_batched` (accepted for
/// API compatibility; the shim times every routine call individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget_per_sample: self.measure.div_f64(self.sample_size as f64),
            warmup: self.warmup,
        };
        f(&mut b);
        let mut ns: Vec<f64> = b.samples;
        if ns.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = ns[ns.len() / 2];
        let lo = ns[ns.len() / 10];
        let hi = ns[(ns.len() * 9 / 10).min(ns.len() - 1)];
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Per-benchmark timing harness.
pub struct Bencher {
    samples: Vec<f64>,
    budget_per_sample: Duration,
    warmup: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup and calibration: how many iterations fit one sample budget?
        let warm_start = Instant::now();
        let mut iters_per_sample = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            iters_per_sample += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / iters_per_sample.max(1) as f64;
        let n = ((self.budget_per_sample.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let total_budget = Instant::now();
        while self.samples.len() < self.samples.capacity().max(8)
            && total_budget.elapsed().as_secs_f64() < 2.0
        {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / n as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
            if warm_iters > 10_000 {
                break;
            }
        }
        let total_budget = Instant::now();
        while self.samples.len() < self.samples.capacity().max(8)
            && total_budget.elapsed().as_secs_f64() < 2.0
        {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            sample_size: 4,
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_covers_scales() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5e4).ends_with("µs"));
        assert!(format_ns(5e7).ends_with("ms"));
        assert!(format_ns(5e9).ends_with('s'));
    }
}
