//! Five-searcher tournament: HARL, Ansor, Flextensor, MCTS, and
//! coordinate-descent restarts fight over each operator class with identical
//! measurement budgets, with and without the coordinate-descent fine-tuning
//! phase composed after the search.
//!
//! ```text
//! cargo run --release --example tournament [-- trials]
//! ```
//!
//! Environment:
//! - `HARL_TOURNAMENT_SMOKE=1` — CI smoke mode: two operator classes, a tiny
//!   budget, and the kill/resume + monotonicity checks (the part CI gates).
//! - `HARL_TOURNAMENT_TRIALS=n` — override the per-searcher trial budget.
//!
//! Every result row is machine readable:
//!
//! ```text
//! tournament: class=GEMM-S searcher=mcts trials=160 best_ms=1.234 \
//!     finetune_trials=12 finetuned_best_ms=1.201 sim_s=418
//! ```

use harl_repro::prelude::*;
use std::sync::Arc;

const SEARCHERS: [&str; 5] = ["harl", "ansor", "flextensor", "mcts", "cd"];

fn make_tuner<'m>(searcher: &str, g: Subgraph, m: &'m Measurer) -> Box<dyn Tuner + 'm> {
    match searcher {
        "harl" => Box::new(HarlOperatorTuner::new(
            g,
            m,
            harl_repro::harl::HarlConfigBuilder::from(HarlConfig::tiny())
                .measure_per_round(16)
                .build()
                .expect("valid harl config"),
        )),
        "ansor" => Box::new(AnsorTuner::new(
            g,
            m,
            AnsorConfig::builder()
                .measure_per_round(16)
                .build()
                .expect("valid ansor config"),
        )),
        "flextensor" => Box::new(FlextensorTuner::new(g, m, Default::default())),
        "mcts" => Box::new(MctsTuner::new(
            g,
            m,
            MctsConfig::builder()
                .measure_per_round(16)
                .playouts_per_round(48)
                .build()
                .expect("valid mcts config"),
        )),
        "cd" => Box::new(CdTuner::new(
            g,
            m,
            CdConfig::builder()
                .measure_per_round(16)
                .build()
                .expect("valid cd config"),
        )),
        other => panic!("unknown searcher {other}"),
    }
}

struct Row {
    class: &'static str,
    searcher: &'static str,
    best: f64,
    finetuned_best: f64,
}

fn ms(x: f64) -> String {
    if x.is_finite() {
        format!("{:.4}", x * 1e3)
    } else {
        "inf".to_string()
    }
}

/// MCTS kill/resume bit-identity: an uninterrupted run and a killed-then-
/// resumed run over the same budget must land on bit-equal best latencies
/// and serialized tuner state.
fn mcts_resume_check(g: &Subgraph, trials: u64) -> bool {
    let cfg = || {
        MctsConfig::builder()
            .measure_per_round(16)
            .playouts_per_round(48)
            .build()
            .expect("valid mcts config")
    };

    let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let t_ref = MctsTuner::new(g.clone(), &m_ref, cfg());
    let mut s_ref = TuningSession::builder()
        .launch(Box::new(t_ref), &m_ref, None)
        .expect("launch reference session");
    s_ref.run(trials / 2).expect("reference first half");
    s_ref
        .run(trials - trials / 2)
        .expect("reference second half");
    let best_ref = s_ref.best_latency();
    let state_ref = serde_json::to_string(&s_ref.tuner_state()).expect("serialize");

    let dir = std::env::temp_dir().join(format!("harl-tournament-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let best_resumed;
    let state_resumed;
    {
        let store = Arc::new(RecordStore::open(&dir).expect("open store"));
        let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let t1 = MctsTuner::new(g.clone(), &m1, cfg());
        let mut s1 = TuningSession::builder()
            .launch(Box::new(t1), &m1, Some(store))
            .expect("launch first session");
        s1.run(trials / 2).expect("first half");
        drop(s1); // killed: checkpoint stays on disk

        let store2 = Arc::new(RecordStore::open(&dir).expect("reopen store"));
        let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let t2 = MctsTuner::new(g.clone(), &m2, cfg());
        let mut s2 = TuningSession::builder()
            .launch(Box::new(t2), &m2, Some(store2))
            .expect("launch resumed session");
        assert!(s2.resumed(), "second session must resume the checkpoint");
        s2.run(trials - trials / 2).expect("second half");
        best_resumed = s2.best_latency();
        state_resumed = serde_json::to_string(&s2.tuner_state()).expect("serialize");
    }
    let _ = std::fs::remove_dir_all(&dir);

    best_ref.to_bits() == best_resumed.to_bits() && state_ref == state_resumed
}

fn main() {
    let smoke = std::env::var("HARL_TOURNAMENT_SMOKE").as_deref() == Ok("1");
    let trials: u64 = std::env::var("HARL_TOURNAMENT_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| std::env::args().nth(1).and_then(|s| s.parse().ok()))
        .unwrap_or(if smoke { 48 } else { 160 });
    let classes: &[OperatorClass] = if smoke {
        &[OperatorClass::GemmS, OperatorClass::C1d]
    } else {
        &OperatorClass::ALL
    };
    let finetune_cfg = FinetuneConfig::builder()
        .max_trials((trials / 4).max(8) as usize)
        .build()
        .expect("valid finetune config");

    println!(
        "tournament: {} classes x {} searchers, {trials} trials each{}",
        classes.len(),
        SEARCHERS.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    let mut monotone = true;
    for class in classes {
        let g = operator_suite(*class, 1)
            .into_iter()
            .next()
            .expect("operator class has at least one subgraph");
        for searcher in SEARCHERS {
            let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
            let tuner = make_tuner(searcher, g.clone(), &m);
            let mut session = TuningSession::builder()
                .launch(tuner, &m, None)
                .expect("launch session");
            session.run(trials).expect("run session");
            let best = session.best_latency();
            let search_trials = session.trials_used();
            let out = session.then_finetune(&finetune_cfg).expect("finetune");
            monotone &= out.after <= out.before;
            println!(
                "tournament: class={} searcher={searcher} trials={} best_ms={} \
                 finetune_trials={} finetuned_best_ms={} sim_s={:.0}",
                class.name(),
                search_trials,
                ms(best),
                out.trials,
                ms(out.after),
                m.sim_seconds()
            );
            rows.push(Row {
                class: class.name(),
                searcher,
                best,
                finetuned_best: out.after,
            });
        }
    }

    println!(
        "\n{:>8} {:>12} {:>12} {:>12}",
        "class", "winner", "best_ms", "ft_ms"
    );
    for class in classes {
        let winner = rows
            .iter()
            .filter(|r| r.class == class.name())
            .min_by(|a, b| a.finetuned_best.total_cmp(&b.finetuned_best))
            .expect("every class has rows");
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            winner.class,
            winner.searcher,
            ms(winner.best),
            ms(winner.finetuned_best)
        );
    }

    println!("monotone={}", if monotone { "ok" } else { "VIOLATED" });
    let resume_ok = mcts_resume_check(&operator_suite(classes[0], 1)[0], trials.clamp(16, 48));
    println!(
        "mcts_resume={}",
        if resume_ok {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    if !monotone || !resume_ok {
        std::process::exit(1);
    }
}
