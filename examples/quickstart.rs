//! Quickstart: tune one GEMM operator with HARL on the simulated CPU and
//! print what the auto-scheduler found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `HARL_STORE_DIR=/some/dir` to persist measurement records and the
//! session checkpoint there: a second run against the same directory
//! warm-starts from the first run's measurements (or resumes, if the first
//! run was interrupted). `HARL_TARGET_MS=<ms>` additionally reports how
//! many trials it took to reach that latency — the hook the CI warm-start
//! smoke test uses. `HARL_TRACE=1` writes a span trace of the whole run to
//! `trace.jsonl` (`HARL_TRACE_FILE` overrides the path); summarize it with
//! `harl-trace trace.jsonl`. Tracing never changes the search.

use std::sync::Arc;

use harl_repro::envopts;
use harl_repro::prelude::*;

/// Aborts with a clear message when a `HARL_*` env hook is set to garbage —
/// silently ignoring it would make downstream scripts lie.
fn env_or_die<T>(parsed: Result<T, String>) -> T {
    parsed.unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        std::process::exit(2);
    })
}

fn main() {
    // 1. Pick a workload: the paper's flagship 1024x1024x1024 GEMM.
    let gemm = harl_repro::ir::workload::gemm(1024, 1024, 1024);
    println!("workload: {} ({:.2} GFLOPs)", gemm.name, gemm.flops() / 1e9);

    // 2. A measurer wraps the hardware model (here: the Xeon-6226R-like
    //    CPU) and accounts simulated search time like a real testbed.
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());

    // 3. Show the sketches the Table-2 rules generate.
    let sketches = generate_sketches(&gemm, Target::Cpu);
    println!("sketches generated ({}):", sketches.len());
    for s in &sketches {
        println!("  #{}: {}", s.id, s.desc);
    }

    // 4. Tune through a session. `HarlConfig::paper()` is the full Table-5
    //    setup; `fast()` scales the track counts down so this example
    //    finishes in seconds. With a store attached, every measurement is
    //    persisted and the tuner warm-starts from prior runs.
    let store = env_or_die(envopts::store_dir_from_env())
        .map(|dir| Arc::new(RecordStore::open(&dir).expect("open record store")));
    let target_ms = env_or_die(envopts::target_ms_from_env());
    let tracer = harl_repro::obs::Tracer::from_env();
    let quickstart_span = tracer.span("quickstart");
    let mut tuner = HarlOperatorTuner::new(gemm.clone(), &measurer, HarlConfig::fast());
    tuner.set_tracer(tracer.clone());
    let mut session = TuningSession::builder()
        .job_key(format!("quickstart/{}", gemm.name))
        .launch(Box::new(&mut tuner), &measurer, store.clone())
        .expect("launch tuning session");
    if session.resumed() {
        println!(
            "session: resumed from checkpoint ({} trials already spent)",
            session.trials_used()
        );
    } else if let Some(store) = &store {
        println!(
            "session: warm_records={} (store had {} records)",
            session.warm_records(),
            store.len()
        );
    }
    session.run(160).expect("tuning session");
    session.finish().expect("finish session");
    drop(quickstart_span);
    if tracer.is_enabled() {
        println!("trace: written (summarize with `harl-trace`)");
    }

    // 5. Report.
    let best = tuner
        .best_schedule
        .as_ref()
        .expect("tuning found a schedule");
    let gflops = gemm.flops() / tuner.best_time / 1e9;
    println!("\nafter {} measurement trials:", tuner.trials_used);
    println!("  best execution time: {:.3} ms", tuner.best_time * 1e3);
    println!("  throughput:          {:.1} GFLOP/s", gflops);
    println!("  simulated search:    {:.0} s", measurer.sim_seconds());

    // machine-readable line for scripts (see ci/check.sh)
    let trials_to_best = tuner
        .trace
        .first_reaching(tuner.best_time)
        .map(|(t, _)| t as i64)
        .unwrap_or(-1);
    print!(
        "metrics: best_ms={:.9} trials={} trials_to_best={}",
        tuner.best_time * 1e3,
        tuner.trials_used,
        trials_to_best
    );
    if let Some(target) = target_ms {
        // tiny relative tolerance absorbs the decimal truncation of best_ms
        let to_target = tuner
            .trace
            .first_reaching(target * (1.0 + 1e-7) / 1e3)
            .map(|(t, _)| t as i64)
            .unwrap_or(-1);
        print!(" trials_to_target={to_target}");
    }
    println!();

    println!("\nbest schedule (sketch #{}):", best.sketch_id);
    for (k, tiles) in best.tiles.iter().enumerate() {
        let it = &sketches[best.sketch_id].tiled_iters[k];
        println!(
            "  iter {} ({:?}, extent {}): tile factors {:?}",
            k, it.kind, it.extent, tiles
        );
    }
    println!("  parallel outer loops: {}", best.parallel_fuse);
    println!("  auto-unroll depth:    {}", best.unroll_depth(Target::Cpu));

    // 6. The scheduled loop nest as a code generator would emit it.
    println!("\nscheduled loop nest:");
    print!(
        "{}",
        harl_repro::ir::render_program(&gemm, &sketches[best.sketch_id], Target::Cpu, best)
    );
}
