//! Quickstart: tune one GEMM operator with HARL on the simulated CPU and
//! print what the auto-scheduler found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use harl_repro::prelude::*;

fn main() {
    // 1. Pick a workload: the paper's flagship 1024x1024x1024 GEMM.
    let gemm = harl_repro::ir::workload::gemm(1024, 1024, 1024);
    println!("workload: {} ({:.2} GFLOPs)", gemm.name, gemm.flops() / 1e9);

    // 2. A measurer wraps the hardware model (here: the Xeon-6226R-like
    //    CPU) and accounts simulated search time like a real testbed.
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());

    // 3. Show the sketches the Table-2 rules generate.
    let sketches = generate_sketches(&gemm, Target::Cpu);
    println!("sketches generated ({}):", sketches.len());
    for s in &sketches {
        println!("  #{}: {}", s.id, s.desc);
    }

    // 4. Tune. `HarlConfig::paper()` is the full Table-5 setup; `fast()`
    //    scales the track counts down so this example finishes in seconds.
    let mut tuner = HarlOperatorTuner::new(gemm.clone(), &measurer, HarlConfig::fast());
    tuner.tune(160);

    // 5. Report.
    let best = tuner
        .best_schedule
        .as_ref()
        .expect("tuning found a schedule");
    let gflops = gemm.flops() / tuner.best_time / 1e9;
    println!("\nafter {} measurement trials:", tuner.trials_used);
    println!("  best execution time: {:.3} ms", tuner.best_time * 1e3);
    println!("  throughput:          {:.1} GFLOP/s", gflops);
    println!("  simulated search:    {:.0} s", measurer.sim_seconds());
    println!("\nbest schedule (sketch #{}):", best.sketch_id);
    for (k, tiles) in best.tiles.iter().enumerate() {
        let it = &sketches[best.sketch_id].tiled_iters[k];
        println!(
            "  iter {} ({:?}, extent {}): tile factors {:?}",
            k, it.kind, it.extent, tiles
        );
    }
    println!("  parallel outer loops: {}", best.parallel_fuse);
    println!("  auto-unroll depth:    {}", best.unroll_depth(Target::Cpu));

    // 6. The scheduled loop nest as a code generator would emit it.
    println!("\nscheduled loop nest:");
    print!(
        "{}",
        harl_repro::ir::render_program(&gemm, &sketches[best.sketch_id], Target::Cpu, best)
    );
}
