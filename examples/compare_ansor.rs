//! Head-to-head: HARL vs the Ansor baseline on one tensor operator, with
//! identical measurement budgets — a miniature of Figures 5 and 6.
//!
//! ```text
//! cargo run --release --example compare_ansor [-- trials]
//! ```

use harl_repro::prelude::*;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(320);

    let gemm = harl_repro::ir::workload::gemm(1024, 1024, 1024);
    println!("workload: {} | budget: {trials} trials each\n", gemm.name);

    // --- Ansor -----------------------------------------------------------
    let ansor_m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut ansor = AnsorTuner::new(
        gemm.clone(),
        &ansor_m,
        AnsorConfig {
            measure_per_round: 16,
            ..Default::default()
        },
    );
    ansor.tune(trials);
    println!(
        "Ansor : best {:.3} ms after {} trials ({:.0} simulated seconds)",
        ansor.best_time * 1e3,
        ansor.trials_used,
        ansor_m.sim_seconds()
    );

    // --- HARL ---------------------------------------------------------------
    let harl_m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut harl = HarlOperatorTuner::new(
        gemm.clone(),
        &harl_m,
        HarlConfig {
            measure_per_round: 16,
            ..HarlConfig::fast()
        },
    );
    harl.tune(trials);
    println!(
        "HARL  : best {:.3} ms after {} trials ({:.0} simulated seconds)",
        harl.best_time * 1e3,
        harl.trials_used,
        harl_m.sim_seconds()
    );

    // --- the two headline metrics -------------------------------------------
    let perf_ratio = ansor.best_time / harl.best_time;
    println!("\nfinal performance: HARL/Ansor = {perf_ratio:.2}x");

    match harl.trace.first_reaching(ansor.best_time) {
        Some((t, s)) => println!(
            "search speed: HARL reached Ansor's final performance after {t} trials \
             / {s:.0} s  ({:.2}x faster than Ansor's {:.0} s)",
            ansor_m.sim_seconds() / s,
            ansor_m.sim_seconds()
        ),
        None => {
            println!("search speed: HARL did not reach Ansor's final performance in this budget")
        }
    }

    println!("\nbest-so-far trace (trials → ms):");
    println!("  {:>8} {:>12} {:>12}", "trials", "Ansor", "HARL");
    let steps = 8;
    for i in 1..=steps {
        let t = trials * i / steps;
        let a = ansor.trace.best_at_trial(t);
        let h = harl.trace.best_at_trial(t);
        let ms = |x: f64| {
            if x.is_finite() {
                format!("{:.3}", x * 1e3)
            } else {
                "-".to_string()
            }
        };
        println!("  {:>8} {:>12} {:>12}", t, ms(a), ms(h));
    }
}
