//! Head-to-head: HARL vs the Ansor baseline on one tensor operator, with
//! identical measurement budgets — a miniature of Figures 5 and 6.
//!
//! ```text
//! cargo run --release --example compare_ansor [-- trials]
//! ```

use harl_repro::prelude::*;

/// Drives any tuner through the unified session API with the same budget.
fn run_session(label: &str, tuner: Box<dyn Tuner + '_>, measurer: &Measurer, trials: u64) {
    let mut session = TuningSession::builder()
        .launch(tuner, measurer, None)
        .expect("launch session");
    session.run(trials).expect("run session");
    println!(
        "{label:6}: best {:.3} ms after {} trials ({:.0} simulated seconds)",
        session.best_latency() * 1e3,
        session.trials_used(),
        measurer.sim_seconds()
    );
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(320);

    let gemm = harl_repro::ir::workload::gemm(1024, 1024, 1024);
    println!("workload: {} | budget: {trials} trials each\n", gemm.name);

    // Both tuners implement the common `Tuner` trait, so one driver covers
    // them — the head-to-head is identical by construction.

    // --- Ansor -----------------------------------------------------------
    let ansor_m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut ansor = AnsorTuner::new(
        gemm.clone(),
        &ansor_m,
        AnsorConfig::builder()
            .measure_per_round(16)
            .build()
            .expect("valid ansor config"),
    );
    run_session("Ansor", Box::new(&mut ansor), &ansor_m, trials);

    // --- HARL ---------------------------------------------------------------
    let harl_m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut harl = HarlOperatorTuner::new(
        gemm.clone(),
        &harl_m,
        harl_repro::harl::HarlConfigBuilder::from(HarlConfig::fast())
            .measure_per_round(16)
            .build()
            .expect("valid harl config"),
    );
    run_session("HARL", Box::new(&mut harl), &harl_m, trials);

    // --- the two headline metrics -------------------------------------------
    let perf_ratio = ansor.best_time / harl.best_time;
    println!("\nfinal performance: HARL/Ansor = {perf_ratio:.2}x");

    match harl.trace.first_reaching(ansor.best_time) {
        Some((t, s)) => println!(
            "search speed: HARL reached Ansor's final performance after {t} trials \
             / {s:.0} s  ({:.2}x faster than Ansor's {:.0} s)",
            ansor_m.sim_seconds() / s,
            ansor_m.sim_seconds()
        ),
        None => {
            println!("search speed: HARL did not reach Ansor's final performance in this budget")
        }
    }

    println!("\nbest-so-far trace (trials → ms):");
    println!("  {:>8} {:>12} {:>12}", "trials", "Ansor", "HARL");
    let steps = 8;
    for i in 1..=steps {
        let t = trials * i / steps;
        let a = ansor.trace.best_at_trial(t);
        let h = harl.trace.best_at_trial(t);
        let ms = |x: f64| {
            if x.is_finite() {
                format!("{:.3}", x * 1e3)
            } else {
                "-".to_string()
            }
        };
        println!("  {:>8} {:>12} {:>12}", t, ms(a), ms(h));
    }
}
