//! End-to-end network tuning: HARL's hierarchical search over the 10
//! distinct BERT subgraphs, showing how the subgraph MAB allocates trials
//! — a miniature of §6.3 / Table 4 / Figure 10.
//!
//! ```text
//! cargo run --release --example tune_bert [-- trials]
//! ```

use harl_repro::prelude::*;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(640);

    let subgraphs = Network::Bert.subgraphs(1);
    println!(
        "BERT: {} distinct subgraphs, {trials}-trial budget",
        subgraphs.len()
    );
    for g in &subgraphs {
        println!(
            "  {:<16} w={:<3} {:>10.2} MFLOPs",
            g.name,
            g.weight,
            g.flops() / 1e6
        );
    }

    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let cfg = HarlConfig {
        measure_per_round: 16,
        ..HarlConfig::fast()
    };
    let mut tuner = HarlNetworkTuner::new(subgraphs, &measurer, cfg);
    tuner.tune(trials);

    println!(
        "\nestimated network latency f(S) = Σ wₙ·gₙ = {:.3} ms",
        tuner.network_latency() * 1e3
    );
    println!("simulated search time: {:.0} s\n", measurer.sim_seconds());

    println!(
        "{:<16} {:>8} {:>12} {:>14}",
        "subgraph", "trials", "best (µs)", "weighted (µs)"
    );
    let mut order: Vec<usize> = (0..tuner.infos.len()).collect();
    order.sort_by(|&a, &b| {
        let ca = tuner.infos[a].weight * tuner.states[a].best_time;
        let cb = tuner.infos[b].weight * tuner.states[b].best_time;
        cb.partial_cmp(&ca).unwrap()
    });
    for i in order {
        let info = &tuner.infos[i];
        let st = &tuner.states[i];
        println!(
            "{:<16} {:>8} {:>12.1} {:>14.1}",
            info.name,
            st.trials,
            st.best_time * 1e6,
            info.weight * st.best_time * 1e6
        );
    }

    println!("\nallocation history (first 20 rounds):");
    for r in tuner.rounds.iter().take(20) {
        println!(
            "  round at trial {:>5}: tuned {:<16} → f(S) = {:.3} ms",
            r.trials_after,
            tuner.infos[r.task].name,
            if r.latency.is_finite() {
                r.latency * 1e3
            } else {
                f64::NAN
            }
        );
    }
}
