//! Ablation of the adaptive-stopping module (§5): HARL with fixed-length
//! episodes ("Hierarchical-RL") vs HARL with adaptive stopping, on the
//! same GEMM — a miniature of Figure 7.
//!
//! ```text
//! cargo run --release --example ablation_adaptive [-- trials]
//! ```

use harl_repro::harl::critical_step_histogram;
use harl_repro::prelude::*;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(320);

    let gemm = harl_repro::ir::workload::gemm(1024, 1024, 1024);
    println!(
        "workload: {} | budget: {trials} trials per variant\n",
        gemm.name
    );

    let base = HarlConfig {
        measure_per_round: 16,
        ..HarlConfig::fast()
    };

    let fm = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut fixed = HarlOperatorTuner::new(
        gemm.clone(),
        &fm,
        HarlConfig {
            adaptive_stopping: false,
            ..base.clone()
        },
    );
    fixed.tune(trials);

    let am = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut adaptive = HarlOperatorTuner::new(gemm.clone(), &am, base);
    adaptive.tune(trials);

    println!(
        "Hierarchical-RL (fixed length): best {:.3} ms",
        fixed.best_time * 1e3
    );
    println!(
        "HARL (adaptive stopping):       best {:.3} ms",
        adaptive.best_time * 1e3
    );
    println!(
        "adaptive/fixed performance: {:.2}x\n",
        fixed.best_time / adaptive.best_time
    );

    // Fig 7(b): where along each schedule track was the best schedule found?
    let hf = critical_step_histogram(&fixed.critical_steps, 10);
    let ha = critical_step_histogram(&adaptive.critical_steps, 10);
    println!("critical-step position histogram (relative position on track):");
    println!("{:>10} {:>8} {:>9}", "bin", "fixed", "adaptive");
    for i in 0..10 {
        println!(
            "{:>6.1}-{:<3.1} {:>8} {:>9}",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0,
            hf[i],
            ha[i]
        );
    }
    let frac = |h: &[u64]| {
        let total: u64 = h.iter().sum();
        if total == 0 {
            0.0
        } else {
            h[9] as f64 / total as f64
        }
    };
    println!(
        "\ncritical steps in the last 10% of their track: fixed {:.0}%, adaptive {:.0}%",
        frac(&hf) * 100.0,
        frac(&ha) * 100.0
    );
    println!("(the paper's point: adaptive stopping wastes far fewer post-peak steps)");
}
