//! The observability layer must be *observation only*: running with a
//! tracer attached has to leave every search-visible artifact — best
//! latency bits, the tuning trace, the checkpoint bytes — exactly as the
//! untraced run produces them, while still writing a structurally valid
//! span log. These tests pin that invariant for the HARL and Ansor tuners
//! end-to-end.
//!
//! The tracer is constructed directly (not via `HARL_TRACE`): mutating
//! process env in a multi-threaded test binary races with other tests.
//! CI's smoke stage covers the env path against the quickstart example.

use harl_repro::ansor::AnsorTuner;
use harl_repro::harl::HarlOperatorTuner;
use harl_repro::obs::Tracer;
use harl_repro::prelude::*;

fn gemm() -> Subgraph {
    harl_repro::ir::workload::gemm(256, 256, 256)
}

fn trace_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("harl-obs-{tag}-{}.jsonl", std::process::id()))
}

/// (best_time bits, trials, trace JSON, checkpoint JSON) of a HARL run,
/// optionally traced.
fn harl_run(tracer: Option<Tracer>, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(gemm(), &m, HarlConfig::tiny());
    if let Some(tr) = tracer {
        t.set_tracer(tr);
    }
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

fn ansor_run(tracer: Option<Tracer>, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = AnsorTuner::new(gemm(), &m, AnsorConfig::default());
    if let Some(tr) = tracer {
        t.set_tracer(tr);
    }
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

/// Numeric field of one hand-rolled JSON trace line.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// String field of one hand-rolled JSON trace line (no escapes in names).
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    rest.split('"').next()
}

/// Structural checks on a written trace file: parseable lines, balanced
/// span_start/span_end, ids unique, timestamps monotone.
fn check_trace(path: &std::path::Path, expect_span: &str) {
    let text = std::fs::read_to_string(path).expect("trace file written");
    assert!(!text.is_empty(), "trace file is empty");
    let mut starts = 0u64;
    let mut ends = 0u64;
    let mut last_ts = 0u64;
    let mut ids = std::collections::HashSet::new();
    let mut names = std::collections::HashSet::new();
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed trace line: {line}"
        );
        let kind = str_field(line, "t").expect("record kind");
        let ts = num_field(line, "ts_us").expect("timestamp");
        assert!(ts >= last_ts, "timestamps must be monotone");
        last_ts = ts;
        match kind {
            "span_start" => {
                starts += 1;
                let id = num_field(line, "id").expect("span id");
                assert!(ids.insert(id), "span ids unique");
                names.insert(str_field(line, "name").unwrap().to_string());
            }
            "span_end" => ends += 1,
            "event" => {
                names.insert(str_field(line, "name").unwrap().to_string());
            }
            other => panic!("unknown record kind `{other}`"),
        }
    }
    assert_eq!(starts, ends, "every span must close");
    assert!(
        names.contains(expect_span),
        "trace must contain `{expect_span}`; saw {names:?}"
    );
}

#[test]
fn traced_harl_run_is_bit_identical_to_untraced() {
    let path = trace_path("harl");
    let _ = std::fs::remove_file(&path);
    let plain = harl_run(None, 48);
    let traced = {
        let tracer = Tracer::to_file(&path).expect("open trace file");
        harl_run(Some(tracer), 48)
    };
    assert_eq!(plain.0, traced.0, "best_time bits must match");
    assert_eq!(plain.1, traced.1, "trials must match");
    assert_eq!(plain.2, traced.2, "tuning trace must match");
    assert_eq!(plain.3, traced.3, "checkpoint bytes must match");
    check_trace(&path, "harl_round");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn traced_ansor_run_is_bit_identical_to_untraced() {
    let path = trace_path("ansor");
    let _ = std::fs::remove_file(&path);
    let plain = ansor_run(None, 64);
    let traced = {
        let tracer = Tracer::to_file(&path).expect("open trace file");
        ansor_run(Some(tracer), 64)
    };
    assert_eq!(plain.0, traced.0, "best_time bits must match");
    assert_eq!(plain.1, traced.1, "trials must match");
    assert_eq!(plain.2, traced.2, "tuning trace must match");
    assert_eq!(plain.3, traced.3, "checkpoint bytes must match");
    check_trace(&path, "ansor_round");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn harl_trace_contains_episode_phases() {
    let path = trace_path("phases");
    let _ = std::fs::remove_file(&path);
    let tracer = Tracer::to_file(&path).expect("open trace file");
    harl_run(Some(tracer), 32);
    let text = std::fs::read_to_string(&path).unwrap();
    for phase in [
        "sketch_pick",
        "episode",
        "ppo_act",
        "score",
        "topk_select",
        "measure",
        "gbt_retrain",
    ] {
        assert!(
            text.contains(&format!("\"name\":\"{phase}\"")),
            "trace must contain phase `{phase}`"
        );
    }
    // pipeline events are parented under the episode's spans
    assert!(text.contains("\"name\":\"score_batch\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn global_metrics_render_after_a_run() {
    harl_run(None, 16);
    let dump = harl_repro::obs::global().render();
    for needle in [
        "harl_scoring_candidates_total",
        "harl_gbt_retrains_total",
        "harl_measure_trials_total",
    ] {
        assert!(dump.contains(needle), "metrics dump must contain {needle}");
    }
}
