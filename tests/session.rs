//! End-to-end tests of the tuning session API: record persistence across
//! processes' store directories, kill/resume determinism, and warm-starts.

use std::sync::Arc;

use harl_repro::harl::HarlOperatorTuner;
use harl_repro::prelude::*;

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("harl-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn gemm() -> Subgraph {
    harl_repro::ir::workload::gemm(256, 256, 256)
}

#[test]
fn record_store_round_trips_session_measurements() {
    let dir = temp_store("roundtrip");
    {
        let store = Arc::new(RecordStore::open(&dir).unwrap());
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let mut tuner = HarlOperatorTuner::new(gemm(), &measurer, HarlConfig::tiny());
        let mut session = TuningSession::builder()
            .launch(Box::new(&mut tuner), &measurer, Some(store.clone()))
            .unwrap();
        session.run(16).unwrap();
        session.finish().unwrap();
        assert_eq!(store.len() as u64, measurer.trials());
        assert_eq!(store.dropped_writes(), 0);
    }
    // a fresh open sees byte-identical records
    let reopened = RecordStore::open(&dir).unwrap();
    assert!(reopened.len() >= 16);
    let key = gemm().similarity_key();
    for r in reopened.snapshot() {
        assert_eq!(r.similarity_key, key);
        assert_eq!(r.workload, gemm().name);
        assert!(r.time.is_finite() && r.time > 0.0);
        assert!(r.flops_per_sec > 0.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_session_resumes_to_bit_equal_best() {
    let dir = temp_store("resume");

    // uninterrupted reference run: 6 rounds in one go
    let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t_ref = HarlOperatorTuner::new(gemm(), &m_ref, HarlConfig::tiny());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t_ref), &m_ref, None)
            .unwrap();
        s.run(48).unwrap();
    }

    // the same run killed after 24 trials...
    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t1 = HarlOperatorTuner::new(gemm(), &m1, HarlConfig::tiny());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t1), &m1, Some(store.clone()))
            .unwrap();
        s.run(24).unwrap();
        // no finish(): the checkpoint stays, as after a crash
    }
    drop(store);

    // ...resumes in a fresh "process" (new store handle, measurer, tuner)
    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t2 = HarlOperatorTuner::new(gemm(), &m2, HarlConfig::tiny());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t2), &m2, Some(store2))
            .unwrap();
        assert!(s.resumed(), "checkpoint must be picked up");
        s.run(24).unwrap();
    }

    assert_eq!(
        t2.best_time.to_bits(),
        t_ref.best_time.to_bits(),
        "resumed search must match the uninterrupted one bit-for-bit"
    );
    assert_eq!(t2.trials_used, t_ref.trials_used);
    assert_eq!(m2.trials(), m_ref.trials());
    assert_eq!(m2.sim_seconds().to_bits(), m_ref.sim_seconds().to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_trains_cost_model_with_zero_fresh_trials() {
    let dir = temp_store("warmtrain");

    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t1 = HarlOperatorTuner::new(gemm(), &m1, HarlConfig::tiny());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t1), &m1, Some(store.clone()))
            .unwrap();
        s.run(32).unwrap();
        s.finish().unwrap();
    }
    drop(store);

    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t2 = HarlOperatorTuner::new(gemm(), &m2, HarlConfig::tiny());
    let s = TuningSession::builder()
        .launch(Box::new(&mut t2), &m2, Some(store2))
        .unwrap();
    assert!(!s.resumed());
    assert!(s.warm_records() > 0);
    drop(s);
    assert!(
        t2.cost_model().is_trained(),
        "warm-start must pre-train the cost model"
    );
    assert_eq!(t2.trials_used, 0, "warm-start spends no trials");
    assert_eq!(m2.trials(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_run_reaches_cold_best_in_strictly_fewer_trials() {
    let dir = temp_store("warmspeed");

    // cold run: 160 trials from scratch
    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut cold = HarlOperatorTuner::new(gemm(), &m1, HarlConfig::tiny());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut cold), &m1, Some(store.clone()))
            .unwrap();
        s.run(160).unwrap();
        s.finish().unwrap();
    }
    drop(store);
    let cold_best = cold.best_time;
    let cold_to_best = cold
        .trace
        .first_reaching(cold_best)
        .expect("cold run reached its own best")
        .0;

    // warm run against the same store
    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut warm = HarlOperatorTuner::new(gemm(), &m2, HarlConfig::tiny());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut warm), &m2, Some(store2))
            .unwrap();
        assert!(s.warm_records() > 0);
        s.run(160).unwrap();
        s.finish().unwrap();
    }
    let warm_to_cold_best = warm
        .trace
        .first_reaching(cold_best)
        .expect("warm run must reach the cold run's best")
        .0;

    assert!(
        warm_to_cold_best < cold_to_best,
        "warm start must reach the cold best in strictly fewer trials: \
         warm {warm_to_cold_best} vs cold {cold_to_best}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mcts_warm_run_reaches_cold_best_in_strictly_fewer_trials() {
    let dir = temp_store("mcts-warmspeed");

    // cold MCTS run: 160 trials from scratch
    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut cold = MctsTuner::new(gemm(), &m1, MctsConfig::default());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut cold), &m1, Some(store.clone()))
            .unwrap();
        s.run(160).unwrap();
        s.finish().unwrap();
    }
    drop(store);
    let cold_best = cold.best_time;
    let cold_to_best = cold
        .trace
        .first_reaching(cold_best)
        .expect("cold run reached its own best")
        .0;

    // warm MCTS run against the same store: the best record jumps the
    // measurement queue and seeds the search tree's roots
    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut warm = MctsTuner::new(gemm(), &m2, MctsConfig::default());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut warm), &m2, Some(store2))
            .unwrap();
        assert!(s.warm_records() > 0);
        s.run(160).unwrap();
        s.finish().unwrap();
    }
    let warm_to_cold_best = warm
        .trace
        .first_reaching(cold_best)
        .expect("warm run must reach the cold run's best")
        .0;

    assert!(
        warm_to_cold_best < cold_to_best,
        "warm-started MCTS must reach the cold best in strictly fewer trials: \
         warm {warm_to_cold_best} vs cold {cold_to_best}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn then_finetune_is_monotone_for_every_searcher() {
    let cfg = FinetuneConfig::builder().max_trials(24).build().unwrap();
    let g = gemm();

    // five sessions, one per searcher, all driven through the same trait
    // object path the daemon uses; fine-tuning may only improve the best
    for searcher in ["harl", "ansor", "flextensor", "mcts", "cd"] {
        let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let tuner: Box<dyn Tuner + '_> = match searcher {
            "harl" => Box::new(HarlOperatorTuner::new(g.clone(), &m, HarlConfig::tiny())),
            "ansor" => Box::new(AnsorTuner::new(g.clone(), &m, AnsorConfig::default())),
            "flextensor" => Box::new(FlextensorTuner::new(g.clone(), &m, Default::default())),
            "mcts" => Box::new(MctsTuner::new(g.clone(), &m, MctsConfig::default())),
            _ => Box::new(CdTuner::new(g.clone(), &m, CdConfig::default())),
        };
        let mut session = TuningSession::builder().launch(tuner, &m, None).unwrap();
        session.run(32).unwrap();
        let out = session.then_finetune(&cfg).unwrap();
        assert!(!out.skipped, "{searcher}: finetune must run");
        assert!(
            out.after <= out.before,
            "{searcher}: finetune regressed {} -> {}",
            out.before,
            out.after
        );
        assert_eq!(
            out.after.to_bits(),
            session.best_latency().to_bits(),
            "{searcher}: outcome and session must agree on the final best"
        );
    }
}
