//! Edge-case and failure-injection tests across the stack.

use harl_repro::ir::{workload, ActionSpace};
use harl_repro::prelude::*;

#[test]
fn extent_one_iterators_are_schedulable() {
    // batch-1 convolutions carry extent-1 iterators; everything must cope
    let g = workload::conv2d(1, 7, 7, 1, 1, 1, 1, 0);
    g.validate().unwrap();
    let sketches = generate_sketches(&g, Target::Cpu);
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    for sk in &sketches {
        for _ in 0..20 {
            let s = Schedule::random(sk, Target::Cpu, &mut rng);
            s.validate(sk, Target::Cpu).unwrap();
            assert!(Hardware::cpu().execution_time(&g, sk, &s) > 0.0);
        }
    }
}

#[test]
fn prime_extent_iterators_tile_correctly() {
    // 97 and 13 are prime: tiling can only put the whole factor in one slot
    let g = workload::gemm(97, 13, 101);
    let sketches = generate_sketches(&g, Target::Cpu);
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    for sk in &sketches {
        for _ in 0..30 {
            let s = Schedule::random(sk, Target::Cpu, &mut rng);
            s.validate(sk, Target::Cpu).unwrap();
            for (k, t) in sk.tiled_iters.iter().enumerate() {
                let prod: u64 = s.tiles[k].iter().map(|&f| f as u64).product();
                assert_eq!(prod, t.extent as u64);
            }
        }
    }
}

#[test]
fn tuning_survives_extreme_measurement_noise() {
    // 50% noise: the tuner must still terminate and return something sane
    let cfg = MeasureConfig {
        noise: 0.5,
        ..Default::default()
    };
    let measurer = Measurer::new(Hardware::cpu(), cfg);
    let g = workload::gemm(128, 128, 128);
    let mut t = HarlOperatorTuner::new(g, &measurer, HarlConfig::tiny());
    t.tune(24);
    assert!(t.best_time.is_finite() && t.best_time > 0.0);
    assert!(t.best_schedule.is_some());
}

#[test]
fn tuning_with_zero_noise_is_fully_deterministic_across_tuners() {
    let run = || {
        let cfg = MeasureConfig {
            noise: 0.0,
            ..Default::default()
        };
        let measurer = Measurer::new(Hardware::cpu(), cfg);
        let g = workload::gemm(128, 256, 128);
        let mut t = HarlOperatorTuner::new(g, &measurer, HarlConfig::tiny());
        t.tune(16);
        t.best_time
    };
    assert_eq!(run(), run());
}

#[test]
fn single_sketch_subgraph_tunes() {
    // elementwise has one sketch and no reduction; sketch MAB has 1 arm
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let g = workload::elementwise(256, 256, 2.0);
    let mut t = HarlOperatorTuner::new(g, &measurer, HarlConfig::tiny());
    t.tune(16);
    assert!(t.best_time.is_finite());
}

#[test]
fn tiny_budget_one_trial() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let g = workload::gemm(64, 64, 64);
    let mut t = HarlOperatorTuner::new(g, &measurer, HarlConfig::tiny());
    t.tune(1);
    assert_eq!(t.trials_used, 1);
    assert!(t.best_time.is_finite());
}

#[test]
fn ansor_and_harl_agree_on_zero_budget() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let g = workload::gemm(64, 64, 64);
    let mut a = AnsorTuner::new(g.clone(), &measurer, AnsorConfig::default());
    assert_eq!(a.round(0), 0);
    let mut h = HarlOperatorTuner::new(g, &measurer, HarlConfig::tiny());
    assert_eq!(h.round(0), 0);
    assert_eq!(measurer.trials(), 0);
}

#[test]
fn huge_tile_head_workload_runs() {
    // C3D has 9 iterators → 28 tiled loops on CPU → 785-way tile head;
    // make sure the policy machinery handles the big head
    let g = workload::conv3d(1, 4, 8, 8, 4, 4, 3, 1, 1);
    let sk = &generate_sketches(&g, Target::Cpu)[0];
    let space = ActionSpace::of(sk);
    assert!(space.tile_actions() > 500);
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(g, &measurer, HarlConfig::tiny());
    t.tune(8);
    assert!(t.best_time.is_finite());
}

#[test]
fn network_with_single_subgraph() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut nt = HarlNetworkTuner::new(
        vec![workload::gemm(128, 128, 128)],
        &measurer,
        HarlConfig::tiny(),
    );
    nt.tune(16);
    assert!(nt.network_latency().is_finite());
    assert_eq!(nt.allocations().len(), 1);
}

#[test]
fn weighted_latency_respects_weights() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut g1 = workload::gemm(128, 128, 128);
    g1.weight = 10.0;
    let g2 = workload::gemm(128, 128, 128);
    // same graph tuned twice; weight must scale the latency contribution
    let mut nt = HarlNetworkTuner::new(vec![g1, g2], &measurer, HarlConfig::tiny());
    nt.tune(32);
    let lat = nt.network_latency();
    let t1 = nt.states[0].best_time * 10.0;
    let t2 = nt.states[1].best_time;
    assert!((lat - (t1 + t2)).abs() / lat < 1e-9);
}
