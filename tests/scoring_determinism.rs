//! Bit-determinism of the parallel stages across pool widths.
//!
//! Two pools exist: the scoring pipeline (fingerprint, cache, extract,
//! batch-predict — `HARL_SCORE_THREADS`) and the PPO gradient reduction
//! (`HARL_PPO_THREADS`), plus the batched `ppo_act` matrix pass over all
//! live tracks. Every one of them must come out bit-equal to the seed's
//! serial loops no matter how many threads run or how wide the batch is.
//! These tests pin that guarantee end-to-end: a full tuning run with both
//! pools at width 4 must produce the same best latency, the same trace,
//! and the same checkpoint bytes as the width-1 run, and the PR-2
//! kill/resume bit-equality must survive with the pools and batching on.
//!
//! PR-9 adds a third axis: the runtime-dispatched SIMD backends
//! (`harl-simd`). Scalar-forced, every supported vector backend, and
//! auto-dispatched runs must all be bit-equal, and a checkpoint written
//! under one backend must resume bit-equal under another.

use std::sync::Arc;

use harl_repro::ansor::AnsorTuner;
use harl_repro::harl::HarlOperatorTuner;
use harl_repro::prelude::*;

fn gemm() -> Subgraph {
    harl_repro::ir::workload::gemm(256, 256, 256)
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("harl-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// (best_time bits, trials, trace JSON, checkpoint JSON) of a HARL run
/// with both the scoring and the PPO pool at `threads`.
fn harl_run(threads: usize, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(gemm(), &m, HarlConfig::tiny());
    t.set_parallelism(ParallelismOpts::uniform(threads));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

fn ansor_run(threads: usize, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = AnsorTuner::new(gemm(), &m, AnsorConfig::default());
    t.set_parallelism(ParallelismOpts::uniform(threads));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

fn mcts_run(threads: usize, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = MctsTuner::new(gemm(), &m, MctsConfig::default());
    t.set_parallelism(ParallelismOpts::uniform(threads));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

/// Serializes the tests that flip the process-wide forced SIMD backend.
/// (Flipping mid-run is harmless for the *other* tests in this binary —
/// every backend is bit-identical, which is exactly what this file pins —
/// but the matrix tests need each phase to really run the backend it
/// names.)
fn force_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores auto dispatch even if the test panics.
struct RestoreDispatch;
impl Drop for RestoreDispatch {
    fn drop(&mut self) {
        harl_simd::force_backend(None);
    }
}

#[test]
fn full_runs_are_bit_identical_across_simd_backends() {
    // The PR-9 kernel-dispatch invariant end-to-end: a full HARL run and
    // a full Ansor run forced onto the scalar reference kernels must be
    // bit-equal — best latency, trace bytes, checkpoint bytes — to the
    // same runs forced onto every vector backend this host supports, and
    // to the auto-dispatched run (HARL_SIMD unset → best supported).
    use harl_simd::Backend;
    let _serialize = force_lock();
    let _restore = RestoreDispatch;

    harl_simd::force_backend(Some(Backend::Scalar));
    let harl_ref = harl_run(4, 32);
    let ansor_ref = ansor_run(4, 24);

    let mut cases: Vec<(&str, Option<Backend>)> = Backend::ALL
        .into_iter()
        .filter(|b| b.is_supported() && *b != Backend::Scalar)
        .map(|b| (b.name(), Some(b)))
        .collect();
    cases.push(("auto", None));

    for (name, force) in cases {
        harl_simd::force_backend(force);
        let harl = harl_run(4, 32);
        assert_eq!(harl_ref.0, harl.0, "{name}: HARL best latency bits");
        assert_eq!(harl_ref.1, harl.1, "{name}: HARL trial count");
        assert_eq!(harl_ref.2, harl.2, "{name}: HARL trace bytes");
        assert_eq!(harl_ref.3, harl.3, "{name}: HARL checkpoint bytes");
        let ansor = ansor_run(4, 24);
        assert_eq!(ansor_ref.0, ansor.0, "{name}: Ansor best latency bits");
        assert_eq!(ansor_ref.1, ansor.1, "{name}: Ansor trial count");
        assert_eq!(ansor_ref.2, ansor.2, "{name}: Ansor trace bytes");
        assert_eq!(ansor_ref.3, ansor.3, "{name}: Ansor checkpoint bytes");
    }
}

#[test]
fn killed_session_resumes_bit_equal_across_backend_flip() {
    // A checkpoint written under the scalar kernels and resumed under the
    // auto-dispatched vector backend (the "crashed on an old box, resumed
    // on an AVX2 box" scenario) must land bit-equal to an uninterrupted
    // auto-dispatched run.
    use harl_simd::Backend;
    let _serialize = force_lock();
    let _restore = RestoreDispatch;
    let dir = temp_store("backend-resume");

    harl_simd::force_backend(None);
    let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t_ref = HarlOperatorTuner::new(gemm(), &m_ref, HarlConfig::tiny());
    t_ref.set_parallelism(ParallelismOpts::uniform(4));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t_ref), &m_ref, None)
            .unwrap();
        s.run(48).unwrap();
    }

    harl_simd::force_backend(Some(Backend::Scalar));
    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t1 = HarlOperatorTuner::new(gemm(), &m1, HarlConfig::tiny());
    t1.set_parallelism(ParallelismOpts::uniform(4));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t1), &m1, Some(store.clone()))
            .unwrap();
        s.run(24).unwrap();
        // no finish(): checkpoint stays, as after a crash
    }
    drop(store);

    harl_simd::force_backend(None);
    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t2 = HarlOperatorTuner::new(gemm(), &m2, HarlConfig::tiny());
    t2.set_parallelism(ParallelismOpts::uniform(4));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t2), &m2, Some(store2))
            .unwrap();
        assert!(s.resumed(), "checkpoint must be picked up");
        s.run(24).unwrap();
    }

    assert_eq!(
        t2.best_time.to_bits(),
        t_ref.best_time.to_bits(),
        "scalar-kill / dispatched-resume must match the uninterrupted run"
    );
    assert_eq!(t2.trials_used, t_ref.trials_used);
    assert_eq!(m2.trials(), m_ref.trials());
    assert_eq!(m2.sim_seconds().to_bits(), m_ref.sim_seconds().to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn harl_scoring_is_bit_identical_at_widths_1_and_4() {
    let serial = harl_run(1, 48);
    let pooled = harl_run(4, 48);
    assert_eq!(serial.0, pooled.0, "best latency must match bit-for-bit");
    assert_eq!(serial.1, pooled.1, "trial count must match");
    assert_eq!(serial.2, pooled.2, "trace must match byte-for-byte");
    assert_eq!(serial.3, pooled.3, "checkpoint must match byte-for-byte");
}

#[test]
fn harl_scoring_is_bit_identical_across_width_matrix() {
    // The pairwise 1-vs-4 test catches most regressions; this matrix
    // pins the awkward widths too — 2 (minimal real parallelism), 3 and
    // 7 (odd widths whose chunk boundaries never divide the batch
    // evenly, so any chunk-shape dependence in float accumulation or
    // cache fill order would surface here). `uniform` drives both pools,
    // so the PPO gradient reduction is exercised at every width — the
    // checkpoint byte-compare covers the agent's weights after training.
    let serial = harl_run(1, 48);
    for threads in [2, 3, 7] {
        let pooled = harl_run(threads, 48);
        assert_eq!(
            serial.0, pooled.0,
            "width {threads}: best latency must match bit-for-bit"
        );
        assert_eq!(
            serial.1, pooled.1,
            "width {threads}: trial count must match"
        );
        assert_eq!(
            serial.2, pooled.2,
            "width {threads}: trace must match byte-for-byte"
        );
        assert_eq!(
            serial.3, pooled.3,
            "width {threads}: checkpoint must match byte-for-byte"
        );
    }
}

#[test]
fn ansor_scoring_is_bit_identical_at_widths_1_and_4() {
    let serial = ansor_run(1, 32);
    let pooled = ansor_run(4, 32);
    assert_eq!(serial.0, pooled.0, "best latency must match bit-for-bit");
    assert_eq!(serial.1, pooled.1, "trial count must match");
    assert_eq!(serial.2, pooled.2, "trace must match byte-for-byte");
    assert_eq!(serial.3, pooled.3, "checkpoint must match byte-for-byte");
}

#[test]
fn mcts_scoring_is_bit_identical_at_widths_1_and_4() {
    // MCTS rollouts score through the same batched pipeline; the search
    // tree (serialized into the checkpoint) must come out byte-equal at
    // any pool width
    let serial = mcts_run(1, 48);
    let pooled = mcts_run(4, 48);
    assert_eq!(serial.0, pooled.0, "best latency must match bit-for-bit");
    assert_eq!(serial.1, pooled.1, "trial count must match");
    assert_eq!(serial.2, pooled.2, "trace must match byte-for-byte");
    assert_eq!(serial.3, pooled.3, "checkpoint must match byte-for-byte");
}

#[test]
fn batched_ppo_act_matches_per_sample_act() {
    // The episode loop batches all live tracks into one `act_batch`
    // matrix pass. This pins, through the public facade, that the batch
    // pass consumes the RNG stream and produces the (actions, logp)
    // pairs of the seed's per-track `act` loop — bit-for-bit, including
    // rows with empty masks.
    use harl_repro::nnet::PpoAgent;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let heads = [11usize, 3, 3, 3];
    let dim = harl_repro::ir::FEATURE_DIM;
    let mut rng_init = StdRng::seed_from_u64(7);
    let agent = PpoAgent::new(dim, &heads, Default::default(), &mut rng_init);

    let batch = 5;
    let samples = 3;
    let mut states = vec![0.0f32; batch * dim];
    for (i, v) in states.iter_mut().enumerate() {
        *v = ((i * 37 % 101) as f32) / 101.0 - 0.5;
    }
    let masks: Vec<Vec<Vec<bool>>> = (0..batch)
        .map(|b| {
            heads
                .iter()
                .map(|&h| (0..h).map(|a| (a + b) % 3 != 0 || a == 1).collect())
                .collect()
        })
        .collect();

    let mut rng_a = StdRng::seed_from_u64(12345);
    let mut rng_b = StdRng::seed_from_u64(12345);

    let mut batched_agent = agent.clone();
    let batched = batched_agent.act_batch(&states, batch, &masks, samples, &mut rng_a);

    let mut serial_agent = agent.clone();
    for b in 0..batch {
        for (s, draw) in batched[b].iter().enumerate().take(samples) {
            let (actions, logp) =
                serial_agent.act(&states[b * dim..(b + 1) * dim], &masks[b], &mut rng_b);
            assert_eq!(draw.0, actions, "row {b} draw {s}: actions");
            assert_eq!(
                draw.1.to_bits(),
                logp.to_bits(),
                "row {b} draw {s}: logp must match bit-for-bit"
            );
        }
    }
    // both paths must have consumed the identical RNG stream
    assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
}

#[test]
fn scoring_pool_reports_cache_traffic() {
    // the determinism above must not come from the cache never engaging:
    // a real run has to show both batches and hits
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(gemm(), &m, HarlConfig::tiny());
    t.set_parallelism(ParallelismOpts::uniform(4));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(32).unwrap();
    }
    let stats = *t.score_stats();
    assert!(stats.batch_count > 0, "pipeline must have run batches");
    assert!(stats.scored > 0);
    assert_eq!(stats.scored, stats.cache_hits + stats.cache_misses);
    assert!(
        stats.cache_hits > 0,
        "episodes revisit candidates: {stats:?}"
    );
    assert_eq!(stats.threads, 4);
}

#[test]
fn killed_session_resumes_bit_equal_under_scoring_pool() {
    // PR-2's kill/resume bit-equality, now with both pools at width 4 on
    // both sides of the kill (the batched ppo_act path is always on) —
    // and a width-1 uninterrupted reference, so this also proves resume
    // does not depend on pool width.
    let dir = temp_store("pool-resume");

    let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t_ref = HarlOperatorTuner::new(gemm(), &m_ref, HarlConfig::tiny());
    t_ref.set_parallelism(ParallelismOpts::serial());
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t_ref), &m_ref, None)
            .unwrap();
        s.run(48).unwrap();
    }

    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t1 = HarlOperatorTuner::new(gemm(), &m1, HarlConfig::tiny());
    t1.set_parallelism(ParallelismOpts::uniform(4));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t1), &m1, Some(store.clone()))
            .unwrap();
        s.run(24).unwrap();
        // no finish(): checkpoint stays, as after a crash
    }
    drop(store);

    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t2 = HarlOperatorTuner::new(gemm(), &m2, HarlConfig::tiny());
    t2.set_parallelism(ParallelismOpts::uniform(4));
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t2), &m2, Some(store2))
            .unwrap();
        assert!(s.resumed(), "checkpoint must be picked up");
        s.run(24).unwrap();
    }

    assert_eq!(
        t2.best_time.to_bits(),
        t_ref.best_time.to_bits(),
        "pool-width-4 kill/resume must match the serial uninterrupted run"
    );
    assert_eq!(t2.trials_used, t_ref.trials_used);
    assert_eq!(m2.trials(), m_ref.trials());
    assert_eq!(m2.sim_seconds().to_bits(), m_ref.sim_seconds().to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}
