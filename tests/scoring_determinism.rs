//! Bit-determinism of the batched scoring pipeline across pool widths.
//!
//! The scoring pipeline fingerprints, caches, extracts in parallel, and
//! batch-predicts — but every candidate's score must come out bit-equal to
//! the seed's serial `extract → score` loop no matter how many threads
//! run. These tests pin that guarantee end-to-end: a full tuning run at
//! `HARL_SCORE_THREADS`-style width 4 must produce the same best latency,
//! the same trace, and the same checkpoint bytes as the width-1 run, and
//! the PR-2 kill/resume bit-equality must survive with the pool on.

use std::sync::Arc;

use harl_repro::ansor::AnsorTuner;
use harl_repro::harl::HarlOperatorTuner;
use harl_repro::prelude::*;

fn gemm() -> Subgraph {
    harl_repro::ir::workload::gemm(256, 256, 256)
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("harl-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// (best_time bits, trials, trace JSON, checkpoint JSON) of a HARL run.
fn harl_run(threads: usize, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(gemm(), &m, HarlConfig::tiny());
    t.set_score_threads(threads);
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

fn ansor_run(threads: usize, trials: u64) -> (u64, u64, String, String) {
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = AnsorTuner::new(gemm(), &m, AnsorConfig::default());
    t.set_score_threads(threads);
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(trials).unwrap();
    }
    (
        t.best_time.to_bits(),
        t.trials_used,
        serde_json::to_string(&t.trace).unwrap(),
        serde_json::to_string(&t.checkpoint_state()).unwrap(),
    )
}

#[test]
fn harl_scoring_is_bit_identical_at_widths_1_and_4() {
    let serial = harl_run(1, 48);
    let pooled = harl_run(4, 48);
    assert_eq!(serial.0, pooled.0, "best latency must match bit-for-bit");
    assert_eq!(serial.1, pooled.1, "trial count must match");
    assert_eq!(serial.2, pooled.2, "trace must match byte-for-byte");
    assert_eq!(serial.3, pooled.3, "checkpoint must match byte-for-byte");
}

#[test]
fn harl_scoring_is_bit_identical_across_width_matrix() {
    // The pairwise 1-vs-4 test catches most regressions; this matrix
    // pins the awkward widths too — 2 (minimal real parallelism), 3 and
    // 7 (odd widths whose chunk boundaries never divide the batch
    // evenly, so any chunk-shape dependence in float accumulation or
    // cache fill order would surface here).
    let serial = harl_run(1, 48);
    for threads in [2, 3, 7] {
        let pooled = harl_run(threads, 48);
        assert_eq!(
            serial.0, pooled.0,
            "width {threads}: best latency must match bit-for-bit"
        );
        assert_eq!(
            serial.1, pooled.1,
            "width {threads}: trial count must match"
        );
        assert_eq!(
            serial.2, pooled.2,
            "width {threads}: trace must match byte-for-byte"
        );
        assert_eq!(
            serial.3, pooled.3,
            "width {threads}: checkpoint must match byte-for-byte"
        );
    }
}

#[test]
fn ansor_scoring_is_bit_identical_at_widths_1_and_4() {
    let serial = ansor_run(1, 32);
    let pooled = ansor_run(4, 32);
    assert_eq!(serial.0, pooled.0, "best latency must match bit-for-bit");
    assert_eq!(serial.1, pooled.1, "trial count must match");
    assert_eq!(serial.2, pooled.2, "trace must match byte-for-byte");
    assert_eq!(serial.3, pooled.3, "checkpoint must match byte-for-byte");
}

#[test]
fn scoring_pool_reports_cache_traffic() {
    // the determinism above must not come from the cache never engaging:
    // a real run has to show both batches and hits
    let m = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t = HarlOperatorTuner::new(gemm(), &m, HarlConfig::tiny());
    t.set_score_threads(4);
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t), &m, None)
            .unwrap();
        s.run(32).unwrap();
    }
    let stats = *t.score_stats();
    assert!(stats.batch_count > 0, "pipeline must have run batches");
    assert!(stats.scored > 0);
    assert_eq!(stats.scored, stats.cache_hits + stats.cache_misses);
    assert!(
        stats.cache_hits > 0,
        "episodes revisit candidates: {stats:?}"
    );
    assert_eq!(stats.threads, 4);
}

#[test]
fn killed_session_resumes_bit_equal_under_scoring_pool() {
    // PR-2's kill/resume bit-equality, now with the width-4 pool on both
    // sides of the kill — and a width-1 uninterrupted reference, so this
    // also proves resume does not depend on pool width.
    let dir = temp_store("pool-resume");

    let m_ref = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t_ref = HarlOperatorTuner::new(gemm(), &m_ref, HarlConfig::tiny());
    t_ref.set_score_threads(1);
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t_ref), &m_ref, None)
            .unwrap();
        s.run(48).unwrap();
    }

    let store = Arc::new(RecordStore::open(&dir).unwrap());
    let m1 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t1 = HarlOperatorTuner::new(gemm(), &m1, HarlConfig::tiny());
    t1.set_score_threads(4);
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t1), &m1, Some(store.clone()))
            .unwrap();
        s.run(24).unwrap();
        // no finish(): checkpoint stays, as after a crash
    }
    drop(store);

    let store2 = Arc::new(RecordStore::open(&dir).unwrap());
    let m2 = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut t2 = HarlOperatorTuner::new(gemm(), &m2, HarlConfig::tiny());
    t2.set_score_threads(4);
    {
        let mut s = TuningSession::builder()
            .launch(Box::new(&mut t2), &m2, Some(store2))
            .unwrap();
        assert!(s.resumed(), "checkpoint must be picked up");
        s.run(24).unwrap();
    }

    assert_eq!(
        t2.best_time.to_bits(),
        t_ref.best_time.to_bits(),
        "pool-width-4 kill/resume must match the serial uninterrupted run"
    );
    assert_eq!(t2.trials_used, t_ref.trials_used);
    assert_eq!(m2.trials(), m_ref.trials());
    assert_eq!(m2.sim_seconds().to_bits(), m_ref.sim_seconds().to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}
