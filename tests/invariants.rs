//! Property-based cross-crate invariants: every workload × target × random
//! schedule × random action sequence must keep the system's contracts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use harl_repro::ir::{
    apply_action, crossover, extract_features, generate_sketches, mutate, mutate_kind, Action,
    ActionSpace, MutationKind, Schedule, StepDir, Subgraph, Target, FEATURE_DIM,
};
use harl_repro::sim::Hardware;
use harl_repro::verify::Analyzer;

/// A strategy over the workload zoo.
fn arb_workload() -> impl Strategy<Value = Subgraph> {
    use harl_repro::ir::workload::*;
    prop_oneof![
        (1u32..=9, 1u32..=9, 1u32..=9).prop_map(|(m, k, n)| gemm(1 << m, 1 << k, 1 << n)),
        (1u32..=4, 4u32..=64, 4u32..=64).prop_map(|(b, m, n)| batch_gemm(b, m, 32, n)),
        (16u32..=64, 3u32..=64, 3u32..=64).prop_map(|(l, ci, co)| conv1d(1, l, ci, co, 3, 1, 1)),
        (7u32..=56, 3u32..=64, 3u32..=64).prop_map(|(h, ci, co)| conv2d(1, h, h, ci, co, 3, 1, 1)),
        (7u32..=28, 8u32..=64).prop_map(|(h, c)| depthwise_conv2d(1, h, h, c, 3, 1, 1)),
        (16u32..=512, 16u32..=256).prop_map(|(r, c)| softmax(r, c)),
        (8u32..=128, 8u32..=128, 8u32..=128)
            .prop_map(|(m, k, n)| gemm_epilogue(m, k, n, "tanh", 8.0)),
        (7u32..=28, 8u32..=64, 8u32..=64)
            .prop_map(|(h, ci, co)| conv2d_bn_relu(1, h, h, ci, co, 3, 1, 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedules_valid_for_all_workloads(
        g in arb_workload(),
        target_gpu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let target = if target_gpu { Target::Gpu } else { Target::Cpu };
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(g.validate().is_ok());
        for sk in generate_sketches(&g, target) {
            let s = Schedule::random(&sk, target, &mut rng);
            prop_assert!(s.validate(&sk, target).is_ok());
        }
    }

    #[test]
    fn action_sequences_preserve_validity_and_extents(
        g in arb_workload(),
        seed in any::<u64>(),
        steps in 1usize..40,
    ) {
        let target = Target::Cpu;
        let mut rng = StdRng::seed_from_u64(seed);
        let sketches = generate_sketches(&g, target);
        let sk = &sketches[0];
        let space = ActionSpace::of(sk);
        let mut s = Schedule::random(sk, target, &mut rng);
        use rand::Rng;
        for _ in 0..steps {
            let a = Action {
                tile: rng.gen_range(0..space.tile_actions()),
                compute_at: StepDir::from_index(rng.gen_range(0..3)),
                parallel: StepDir::from_index(rng.gen_range(0..3)),
                unroll: StepDir::from_index(rng.gen_range(0..3)),
            };
            s = apply_action(sk, target, &s, &a);
        }
        prop_assert!(s.validate(sk, target).is_ok());
        // every tile factorization still multiplies to its extent
        for (k, t) in sk.tiled_iters.iter().enumerate() {
            let prod: u64 = s.tiles[k].iter().map(|&f| f as u64).product();
            prop_assert_eq!(prod, t.extent as u64);
        }
    }

    #[test]
    fn simulator_is_positive_finite_and_deterministic(
        g in arb_workload(),
        gpu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let hw = if gpu { Hardware::gpu() } else { Hardware::cpu() };
        let target = hw.target();
        let mut rng = StdRng::seed_from_u64(seed);
        for sk in generate_sketches(&g, target) {
            let s = Schedule::random(&sk, target, &mut rng);
            let t1 = hw.execution_time(&g, &sk, &s);
            let t2 = hw.execution_time(&g, &sk, &s);
            prop_assert!(t1.is_finite() && t1 > 0.0);
            prop_assert_eq!(t1, t2);
            // roofline: never faster than peak
            prop_assert!(t1 >= g.flops() / hw.peak_flops() * 0.999);
        }
    }

    #[test]
    fn features_are_fixed_length_and_finite(
        g in arb_workload(),
        gpu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let target = if gpu { Target::Gpu } else { Target::Cpu };
        let mut rng = StdRng::seed_from_u64(seed);
        for sk in generate_sketches(&g, target) {
            let s = Schedule::random(&sk, target, &mut rng);
            let f = extract_features(&g, &sk, target, &s);
            prop_assert_eq!(f.len(), FEATURE_DIM);
            prop_assert!(f.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn mutations_never_break_schedules(
        g in arb_workload(),
        seed in any::<u64>(),
        steps in 1usize..60,
    ) {
        let target = Target::Cpu;
        let mut rng = StdRng::seed_from_u64(seed);
        let sketches = generate_sketches(&g, target);
        let sk = &sketches[seed as usize % sketches.len()];
        let mut s = Schedule::random(sk, target, &mut rng);
        for _ in 0..steps {
            s = mutate(sk, target, &s, &mut rng);
        }
        prop_assert!(s.validate(sk, target).is_ok());
    }

    #[test]
    fn random_schedules_are_lint_clean(
        g in arb_workload(),
        gpu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let target = if gpu { Target::Gpu } else { Target::Cpu };
        let analyzer = Analyzer::for_target(target);
        let mut rng = StdRng::seed_from_u64(seed);
        for sk in generate_sketches(&g, target) {
            let s = Schedule::random(&sk, target, &mut rng);
            prop_assert!(
                analyzer.is_legal(&g, &sk, target, &s),
                "diagnostics: {:?}",
                analyzer.analyze(&g, &sk, target, &s)
            );
        }
    }

    #[test]
    fn every_mutation_kind_preserves_lint_cleanliness(
        g in arb_workload(),
        gpu in any::<bool>(),
        seed in any::<u64>(),
        steps in 1usize..30,
    ) {
        // the mutation operators must map lint-clean schedules to
        // lint-clean schedules, for every kind individually
        let target = if gpu { Target::Gpu } else { Target::Cpu };
        let analyzer = Analyzer::for_target(target);
        let mut rng = StdRng::seed_from_u64(seed);
        let sketches = generate_sketches(&g, target);
        let sk = &sketches[seed as usize % sketches.len()];
        for kind in [
            MutationKind::TileResample,
            MutationKind::TileShift,
            MutationKind::ComputeAt,
            MutationKind::Parallel,
            MutationKind::Unroll,
        ] {
            let mut s = Schedule::random(sk, target, &mut rng);
            prop_assert!(analyzer.is_legal(&g, sk, target, &s));
            for _ in 0..steps {
                s = mutate_kind(sk, target, &s, kind, &mut rng);
                prop_assert!(
                    analyzer.is_legal(&g, sk, target, &s),
                    "{kind:?} broke lint-cleanliness: {:?}",
                    analyzer.analyze(&g, sk, target, &s)
                );
            }
        }
    }

    #[test]
    fn crossover_and_actions_preserve_lint_cleanliness(
        g in arb_workload(),
        seed in any::<u64>(),
        steps in 1usize..20,
    ) {
        let target = Target::Cpu;
        let analyzer = Analyzer::for_target(target);
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = &generate_sketches(&g, target)[0];
        let space = ActionSpace::of(sk);
        let a = Schedule::random(sk, target, &mut rng);
        let b = Schedule::random(sk, target, &mut rng);
        let mut s = crossover(&a, &b, &mut rng);
        prop_assert!(analyzer.is_legal(&g, sk, target, &s));
        use rand::Rng;
        for _ in 0..steps {
            let act = Action {
                tile: rng.gen_range(0..space.tile_actions()),
                compute_at: StepDir::from_index(rng.gen_range(0..3)),
                parallel: StepDir::from_index(rng.gen_range(0..3)),
                unroll: StepDir::from_index(rng.gen_range(0..3)),
            };
            s = apply_action(sk, target, &s, &act);
            prop_assert!(
                analyzer.is_legal(&g, sk, target, &s),
                "apply_action broke lint-cleanliness: {:?}",
                analyzer.analyze(&g, sk, target, &s)
            );
        }
    }

    #[test]
    fn schedule_order_covers_iteration_space_exactly_once(
        m in 1u32..=8,
        k in 1u32..=8,
        n in 1u32..=8,
        gpu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use harl_repro::ir::exec::coverage_counts;
        let g = harl_repro::ir::workload::gemm(1 << (m % 4), 1 << (k % 4), 1 << (n % 4));
        let target = if gpu { Target::Gpu } else { Target::Cpu };
        let mut rng = StdRng::seed_from_u64(seed);
        for sk in generate_sketches(&g, target) {
            let s = Schedule::random(&sk, target, &mut rng);
            let counts = coverage_counts(&sk, &s, g.anchor_stage());
            prop_assert!(counts.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn scheduled_gemm_execution_is_semantics_preserving(
        seed in any::<u64>(),
    ) {
        use harl_repro::ir::exec::{gemm_reference, gemm_scheduled, Tensor};
        let (m, k, n) = (6usize, 8, 10);
        let g = harl_repro::ir::workload::gemm(m as u32, k as u32, n as u32);
        let a = Tensor::iota_mod(&[m, k], 7);
        let b = Tensor::iota_mod(&[k, n], 5);
        let reference = gemm_reference(m, k, n, &a, &b);
        let mut rng = StdRng::seed_from_u64(seed);
        for sk in generate_sketches(&g, Target::Cpu) {
            let s = Schedule::random(&sk, Target::Cpu, &mut rng);
            prop_assert_eq!(&gemm_scheduled(&sk, &s, m, k, n, &a, &b), &reference);
        }
    }

    #[test]
    fn dedup_key_is_stable_and_sensitive(
        g in arb_workload(),
        seed in any::<u64>(),
    ) {
        let target = Target::Cpu;
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = &generate_sketches(&g, target)[0];
        let s = Schedule::random(sk, target, &mut rng);
        prop_assert_eq!(s.dedup_key(), s.clone().dedup_key());
        let m = mutate(sk, target, &s, &mut rng);
        if m != s {
            prop_assert_ne!(m.dedup_key(), s.dedup_key());
        }
    }
}
