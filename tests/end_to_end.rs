//! Cross-crate integration tests: the full tuning pipelines exercised
//! through the public API.

use harl_repro::prelude::*;

fn small_harl() -> HarlConfig {
    HarlConfig {
        measure_per_round: 8,
        ..HarlConfig::tiny()
    }
}

fn small_ansor() -> AnsorConfig {
    AnsorConfig {
        measure_per_round: 8,
        ..Default::default()
    }
}

#[test]
fn harl_improves_gemm_over_first_round() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let g = harl_repro::ir::workload::gemm(512, 512, 512);
    let mut t = HarlOperatorTuner::new(g, &measurer, small_harl());
    t.round(8);
    let first = t.best_time;
    t.tune(96);
    assert!(
        t.best_time < first,
        "HARL must improve: {first} → {}",
        t.best_time
    );
}

#[test]
fn both_tuners_find_reasonable_gemm_schedules() {
    // both tuners should comfortably beat the median random schedule
    let g = harl_repro::ir::workload::gemm(512, 512, 512);
    let hw = Hardware::cpu();
    let sketches = generate_sketches(&g, Target::Cpu);
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let mut random_times: Vec<f64> = (0..200)
        .map(|_| {
            let s = Schedule::random(&sketches[0], Target::Cpu, &mut rng);
            hw.execution_time(&g, &sketches[0], &s)
        })
        .collect();
    random_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = random_times[100];

    let am = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut ansor = AnsorTuner::new(g.clone(), &am, small_ansor());
    ansor.tune(96);
    let hm = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let mut harl = HarlOperatorTuner::new(g.clone(), &hm, small_harl());
    harl.tune(96);

    assert!(
        ansor.best_time < median / 2.0,
        "Ansor {} vs median {median}",
        ansor.best_time
    );
    assert!(
        harl.best_time < median / 2.0,
        "HARL {} vs median {median}",
        harl.best_time
    );
}

#[test]
fn same_seed_same_result() {
    let run = || {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = harl_repro::ir::workload::gemm(256, 256, 256);
        let mut t = HarlOperatorTuner::new(g, &measurer, small_harl());
        t.tune(48);
        (t.best_time, t.trials_used, measurer.sim_seconds())
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.0, b.0,
        "best time must be deterministic under a fixed seed"
    );
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn different_seeds_explore_differently() {
    let run = |seed: u64| {
        let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
        let g = harl_repro::ir::workload::gemm(256, 256, 256);
        let cfg = HarlConfig {
            seed,
            ..small_harl()
        };
        let mut t = HarlOperatorTuner::new(g, &measurer, cfg);
        t.tune(24);
        t.best_time
    };
    // not a hard guarantee per-pair, but across three seeds at least one
    // pair must differ if seeding is wired through
    let times = [run(1), run(2), run(3)];
    assert!(
        times[0] != times[1] || times[1] != times[2],
        "seeds appear to be ignored: {times:?}"
    );
}

#[test]
fn network_tuning_full_pipeline_on_gpu_model() {
    let measurer = Measurer::new(Hardware::gpu(), MeasureConfig::default());
    let subgraphs = Network::Bert.subgraphs(1);
    let mut nt = HarlNetworkTuner::new(subgraphs, &measurer, small_harl());
    nt.tune(8 * 12);
    assert!(nt.network_latency().is_finite());
    assert!(nt.allocations().iter().all(|&a| a > 0));
}

#[test]
fn operator_suite_tunes_on_both_targets() {
    for hw in [Hardware::cpu(), Hardware::gpu()] {
        let measurer = Measurer::new(hw, MeasureConfig::default());
        let g = operator_suite(OperatorClass::C2d, 1).remove(1); // 56x56x64x64 1x1
        let mut t = HarlOperatorTuner::new(g, &measurer, small_harl());
        t.tune(24);
        assert!(t.best_time.is_finite());
        assert!(t.best_schedule.is_some());
    }
}

#[test]
fn flextensor_baseline_runs_through_prelude() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let g = harl_repro::ir::workload::gemm(128, 128, 128);
    let mut t = FlextensorTuner::new(g, &measurer, Default::default());
    t.tune(60);
    assert!(t.best_time.is_finite());
    assert!(!t.critical_steps.is_empty());
}

#[test]
fn search_time_accounting_is_monotone_and_positive() {
    let measurer = Measurer::new(Hardware::cpu(), MeasureConfig::default());
    let g = harl_repro::ir::workload::gemm(256, 256, 256);
    let mut t = HarlOperatorTuner::new(g, &measurer, small_harl());
    let mut last = 0.0;
    for _ in 0..4 {
        t.round(8);
        let now = measurer.sim_seconds();
        assert!(now > last, "simulated clock must advance monotonically");
        last = now;
    }
    // each trial costs at least r_min (1 s) + build overhead (0.5 s)
    assert!(last >= t.trials_used as f64 * 1.5);
}
